//! The multi-threaded runtime: real parallel map, shuffle and reduce.
//!
//! The paper evaluates *parallel* query plans, but the simulator executes
//! them sequentially and only models parallelism in the cost model. This
//! runtime actually runs them in parallel on a small fixed worker pool
//! (scoped threads, no work-stealing dependency):
//!
//! 1. **map** — the job's map tasks (the same splits the simulator plans)
//!    are pulled off a shared counter by the workers;
//! 2. **shuffle** — two pool passes with full move semantics: workers
//!    first scatter each map task's output into per-reducer buckets
//!    (hashing every pair exactly once via [`crate::hash::partition`]),
//!    then each reducer drains its buckets in task order through a
//!    budget-charged spilling buffer (`crate::shuffle`) — flushing
//!    sorted runs to disk whenever the shared memory budget demands it;
//! 3. **reduce** — fused with the per-reducer drain: each reducer streams
//!    a merge of its spill runs plus the in-memory tail straight into the
//!    reduce function; outputs are collected in partition order on the
//!    caller's thread.
//!
//! Determinism: map results are re-assembled **in task order**, each
//! reducer's pair stream is grouped with keys in sorted order and values
//! in global emission order (the spill merge reconstructs exactly the
//! in-memory grouping — see [`crate::shuffle`]), per-partition reduce
//! outputs are sorted-set relations merged in partition order — so answer
//! relations and [`crate::JobStats`] are byte-identical to the
//! simulator's, whatever the thread count, OS scheduling, or memory
//! budget. `tests/executor_equivalence.rs` and the 1/4/16-thread smoke
//! test at the workspace root enforce this.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use gumbo_common::{Relation, RelationName, Result, Tuple};

use crate::batch_shuffle::{BatchPartition, PairBatch};
use crate::executor::{
    build_job_filters, run_map_task, run_map_task_batch, run_reduce_stream, ComputedJob, DataPlane,
    EngineConfig, Executor, Groups, MapPlan,
};
use crate::hash::{partition, partition_view};
use crate::job::Job;
use crate::message::Message;
use crate::shuffle::{MemoryBudget, ShuffleSpill, SpillStats, SpillingPartition};

/// A run of key-value pairs in emission order: one map task's output
/// during the shuffle's ownership hand-off.
type KvChunk = Vec<(Tuple, Message)>;

/// The multi-threaded MapReduce runtime.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    /// Engine configuration (identical semantics to the simulator's).
    /// The memory-budget tracker is bound at construction: mutating
    /// `config.mem_budget` on an existing executor has no effect — build
    /// a new one with [`ParallelExecutor::with_threads`].
    pub config: EngineConfig,
    /// Requested worker count; `0` = auto-size from the machine and the
    /// configured cluster.
    pub threads: usize,
    /// Shared shuffle memory tracker (clones share it, so a cloned
    /// executor draws from the same budget).
    budget: Arc<MemoryBudget>,
}

impl ParallelExecutor {
    /// An auto-sized pool: min(available parallelism, cluster map slots).
    pub fn new(config: EngineConfig) -> Self {
        ParallelExecutor::with_threads(config, 0)
    }

    /// A fixed-size pool of `threads` workers (`0` = auto).
    pub fn with_threads(config: EngineConfig, threads: usize) -> Self {
        ParallelExecutor {
            config,
            threads,
            budget: Arc::new(MemoryBudget::new(config.mem_budget)),
        }
    }

    /// The worker count this executor will actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        let hw = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        hw.min(self.config.cluster.map_slots()).max(1)
    }
}

/// Run `n` independent tasks on up to `threads` scoped worker threads,
/// returning results **in task order**. Tasks are claimed from a shared
/// atomic counter, so long tasks don't stall short ones behind a static
/// partition. Worker panics propagate to the caller.
fn parallel_for<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("unpoisoned result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned result slot")
                .expect("task completed")
        })
        .collect()
}

impl Executor for ParallelExecutor {
    fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn name(&self) -> &'static str {
        "parallel"
    }

    fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    fn run_phases(&self, job: &Job, plan: MapPlan) -> Result<ComputedJob> {
        self.run_phases_with(job, plan, 0)
    }

    fn run_phases_with(&self, job: &Job, plan: MapPlan, threads: usize) -> Result<ComputedJob> {
        // 0 = this executor's own sizing; the DAG scheduler passes a
        // per-job count derived from the job's cost estimate under its
        // total-core budget.
        let workers = if threads > 0 {
            threads
        } else {
            self.effective_threads()
        };
        match self.config.data_plane {
            DataPlane::Pairs => self.run_phases_pairs(job, plan, workers),
            DataPlane::Columnar => self.run_phases_columnar(job, plan, workers),
        }
    }
}

impl ParallelExecutor {
    /// The pair-plane pipeline: owned `(Tuple, Message)` pairs moved
    /// through per-reducer buckets.
    fn run_phases_pairs(
        &self,
        job: &Job,
        mut plan: MapPlan,
        workers: usize,
    ) -> Result<ComputedJob> {
        // ---- filter build (optional): serial, before map fan-out --------
        let filters = build_job_filters(&self.config, job, &plan)?;
        // ---- map phase: tasks fan out over the pool ---------------------
        // Planning (and its DFS read metering) happened on the caller's
        // thread; the tasks own their fact slices, so workers never touch
        // the DFS. The sealed filters are immutable and probed from every
        // worker.
        let map_span = gumbo_obs::span_with("map", |f| {
            f.str("job", &job.name);
            f.u64("tasks", plan.tasks.len() as u64);
            f.u64("workers", workers as u64);
        });
        let results: Vec<_> = parallel_for(plan.tasks.len(), workers, |i| {
            plan.task_facts(&plan.tasks[i])
                .map(|facts| run_map_task(job, &facts, filters.as_ref()))
        })
        .into_iter()
        .collect::<Result<_>>()?;
        plan.apply(self.config.scale.max(1), &results);
        drop(map_span);

        // ---- shuffle: partitioned into per-reducer buffers --------------
        let reducers = plan.resolve_reducers(job);
        let shuffle_span = gumbo_obs::span_with("shuffle:flush", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });

        // Phase 1 — bucket: workers take ownership of map-task outputs (in
        // task order, preserving global emission order within each chunk)
        // and scatter the pairs into per-reducer vectors. Pairs are moved,
        // never cloned, and each pair is hashed exactly once.
        let chunks: Vec<Mutex<Option<KvChunk>>> = results
            .into_iter()
            .map(|r| Mutex::new(Some(r.emitted)))
            .collect();
        let buckets: Vec<Vec<Mutex<KvChunk>>> = parallel_for(chunks.len(), workers, |c| {
            let pairs = chunks[c]
                .lock()
                .expect("unpoisoned chunk")
                .take()
                .expect("chunk taken once");
            let mut bucket: Vec<KvChunk> = vec![Vec::new(); reducers];
            for (k, v) in pairs {
                bucket[partition(&k, reducers)].push((k, v));
            }
            bucket.into_iter().map(Mutex::new).collect()
        });
        drop(shuffle_span);

        // Phase 2 + reduce, fused per reducer: drain the buckets in chunk
        // order (so values within a key group end up in global emission
        // order — exactly the simulator's) through a budget-charged
        // spilling buffer, then stream the merged groups straight into
        // the reduce function. Reducer workers run concurrently and all
        // charge the executor's shared memory budget.
        let reduce_span = gumbo_obs::span_with("reduce", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });
        let spill = ShuffleSpill::new(&job.name);
        let budget = &*self.budget;
        type ReducedPartition = Result<(BTreeMap<RelationName, Relation>, u64, SpillStats)>;
        let reduced: Vec<ReducedPartition> = parallel_for(reducers, workers, |p| {
            let mut part = SpillingPartition::new(p, budget, &spill, reducers);
            for bucket in &buckets {
                let pairs = std::mem::take(&mut *bucket[p].lock().expect("unpoisoned bucket"));
                for (k, v) in pairs {
                    part.push(k, v)?;
                }
            }
            let bytes = part.total_bytes();
            let (groups, stats) = part.into_groups()?;
            Ok((run_reduce_stream(job, Groups::Pairs(groups))?, bytes, stats))
        });
        // First error in partition order — the simulator's error too,
        // since it scans partitions in order and stops at the first.
        let mut partition_outputs = Vec::with_capacity(reduced.len());
        let mut reducer_bytes: Vec<u64> = Vec::with_capacity(reducers);
        let mut spill_stats = SpillStats::default();
        for outcome in reduced {
            let (outputs, bytes, stats) = outcome?;
            partition_outputs.push(outputs);
            reducer_bytes.push(bytes);
            spill_stats.absorb(stats);
        }
        drop(reduce_span);

        Ok(ComputedJob {
            partitions: plan.partitions,
            reducers,
            reducer_bytes,
            partition_outputs,
            spill: spill_stats,
            filter: filters.map(|f| f.stats()).unwrap_or_default(),
        })
    }

    /// The columnar pipeline: identical phase structure over
    /// [`crate::batch_shuffle`] batches. The bucket pass scatters rows
    /// into per-(task, reducer) [`PairBatch`]es (columnar cell copies,
    /// each key hashed exactly once via a zero-copy view); the fused
    /// drain appends whole buckets in task order — one budget
    /// interaction per bucket — preserving the pair plane's
    /// per-partition emission order exactly.
    fn run_phases_columnar(
        &self,
        job: &Job,
        mut plan: MapPlan,
        workers: usize,
    ) -> Result<ComputedJob> {
        // ---- filter build (optional): serial, before map fan-out --------
        let filters = build_job_filters(&self.config, job, &plan)?;
        // ---- map phase: tasks fan out over the pool ---------------------
        let map_span = gumbo_obs::span_with("map", |f| {
            f.str("job", &job.name);
            f.u64("tasks", plan.tasks.len() as u64);
            f.u64("workers", workers as u64);
        });
        let results: Vec<_> = parallel_for(plan.tasks.len(), workers, |i| {
            plan.task_facts(&plan.tasks[i])
                .map(|facts| run_map_task_batch(job, &facts, filters.as_ref()))
        })
        .into_iter()
        .collect::<Result<_>>()?;
        let counts: Vec<(u64, u64)> = results
            .iter()
            .map(|r| (r.output_bytes, r.records_out))
            .collect();
        plan.apply_counts(self.config.scale.max(1), &counts);
        drop(map_span);

        // ---- shuffle: partitioned into per-reducer batches --------------
        let reducers = plan.resolve_reducers(job);
        let shuffle_span = gumbo_obs::span_with("shuffle:flush", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });

        // Phase 1 — bucket: workers take ownership of map-task batches (in
        // task order) and scatter each row into per-reducer batches.
        let chunks: Vec<Mutex<Option<PairBatch>>> = results
            .into_iter()
            .map(|r| Mutex::new(Some(r.batch)))
            .collect();
        let buckets: Vec<Vec<Mutex<PairBatch>>> = parallel_for(chunks.len(), workers, |c| {
            let batch = chunks[c]
                .lock()
                .expect("unpoisoned chunk")
                .take()
                .expect("chunk taken once");
            let mut bucket: Vec<PairBatch> = (0..reducers).map(|_| PairBatch::new()).collect();
            for row in 0..batch.len() {
                bucket[partition_view(batch.key_view(row), reducers)].push_row(&batch, row);
            }
            bucket.into_iter().map(Mutex::new).collect()
        });
        drop(shuffle_span);

        // Phase 2 + reduce, fused per reducer: append the buckets in chunk
        // order through a budget-charged spilling batch buffer, then
        // stream the merged groups straight into the reduce function.
        let reduce_span = gumbo_obs::span_with("reduce", |f| {
            f.str("job", &job.name);
            f.u64("reducers", reducers as u64);
        });
        let spill = ShuffleSpill::new(&job.name);
        let budget = &*self.budget;
        type ReducedPartition = Result<(BTreeMap<RelationName, Relation>, u64, SpillStats)>;
        let reduced: Vec<ReducedPartition> = parallel_for(reducers, workers, |p| {
            let mut part = BatchPartition::new(p, budget, &spill, reducers);
            for bucket in &buckets {
                let batch = std::mem::take(&mut *bucket[p].lock().expect("unpoisoned bucket"));
                part.push_batch(&batch)?;
            }
            let bytes = part.total_bytes();
            let (groups, stats) = part.into_groups()?;
            Ok((
                run_reduce_stream(job, Groups::Columnar(groups))?,
                bytes,
                stats,
            ))
        });
        // First error in partition order — the simulator's error too.
        let mut partition_outputs = Vec::with_capacity(reduced.len());
        let mut reducer_bytes: Vec<u64> = Vec::with_capacity(reducers);
        let mut spill_stats = SpillStats::default();
        for outcome in reduced {
            let (outputs, bytes, stats) = outcome?;
            partition_outputs.push(outputs);
            reducer_bytes.push(bytes);
            spill_stats.absorb(stats);
        }
        drop(reduce_span);

        Ok(ComputedJob {
            partitions: plan.partitions,
            reducers,
            reducer_bytes,
            partition_outputs,
            spill: spill_stats,
            filter: filters.map(|f| f.stats()).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobConfig, Mapper, Reducer, ReducerPolicy};
    use crate::message::Payload;
    use crate::simulated::SimulatedExecutor;
    use gumbo_common::{Fact, Relation, RelationName};
    use gumbo_storage::SimDfs;

    struct KeyByFirst;
    impl Mapper for KeyByFirst {
        fn map(&self, fact: &Fact, _i: u64, emit: &mut dyn FnMut(Tuple, Message)) {
            let key = Tuple::new(vec![fact.tuple.get(0).unwrap().clone()]);
            if fact.relation.as_str() == "R" {
                let rest = Tuple::new(vec![fact.tuple.get(1).unwrap().clone()]);
                emit(
                    key,
                    Message::Req {
                        cond: 0,
                        payload: Payload::Tuple(rest),
                    },
                );
            } else {
                emit(key, Message::Assert { cond: 0 });
            }
        }
    }

    struct EmitMatched;
    impl Reducer for EmitMatched {
        fn reduce(
            &self,
            key: &Tuple,
            values: &[Message],
            emit: &mut dyn FnMut(&RelationName, Tuple),
        ) {
            if values.iter().any(|m| matches!(m, Message::Assert { .. })) {
                for m in values {
                    if let Message::Req {
                        payload: Payload::Tuple(t),
                        ..
                    } = m
                    {
                        let mut vals: Vec<_> = key.values().to_vec();
                        vals.extend(t.values().iter().cloned());
                        emit(&"Z".into(), Tuple::new(vals));
                    }
                }
            }
        }
    }

    fn job() -> Job {
        Job {
            name: "MSJ(Z)".into(),
            inputs: vec!["R".into(), "S".into()],
            outputs: vec![("Z".into(), 2)],
            mapper: Box::new(KeyByFirst),
            reducer: Box::new(EmitMatched),
            config: JobConfig {
                reducer_policy: ReducerPolicy::Fixed(13),
                ..JobConfig::default()
            },
            estimate: None,
            filter: None,
        }
    }

    fn dfs(n: i64) -> SimDfs {
        let dfs = SimDfs::new();
        dfs.store(
            Relation::from_tuples("R", 2, (0..n).map(|i| Tuple::from_ints(&[i % 97, i]))).unwrap(),
        );
        dfs.store(
            Relation::from_tuples("S", 1, (0..n / 2).map(|i| Tuple::from_ints(&[i % 97]))).unwrap(),
        );
        dfs
    }

    #[test]
    fn matches_simulator_exactly() {
        let config = EngineConfig {
            scale: 100_000,
            ..EngineConfig::default()
        };
        let d_sim = dfs(500);
        let sim_stats = SimulatedExecutor::new(config)
            .execute_job(&d_sim, &job(), 0)
            .unwrap();
        for threads in [1usize, 3, 8] {
            let d_par = dfs(500);
            let par = ParallelExecutor::with_threads(config, threads);
            let par_stats = par.execute_job(&d_par, &job(), 0).unwrap();
            assert_eq!(
                d_sim.peek(&"Z".into()).unwrap(),
                d_par.peek(&"Z".into()).unwrap(),
                "answers differ at {threads} threads"
            );
            assert_eq!(sim_stats.output_tuples, par_stats.output_tuples);
            assert_eq!(sim_stats.profile, par_stats.profile);
            assert_eq!(sim_stats.map_task_durations, par_stats.map_task_durations);
            assert_eq!(
                sim_stats.reduce_task_durations,
                par_stats.reduce_task_durations
            );
            assert!((sim_stats.total_cost - par_stats.total_cost).abs() < 1e-12);
        }
    }

    #[test]
    fn auto_sizing_is_positive_and_bounded() {
        let exec = ParallelExecutor::new(EngineConfig::default());
        let t = exec.effective_threads();
        assert!(t >= 1);
        assert!(t <= EngineConfig::default().cluster.map_slots());
        assert_eq!(
            ParallelExecutor::with_threads(EngineConfig::default(), 5).effective_threads(),
            5
        );
    }

    #[test]
    fn parallel_for_preserves_task_order() {
        for threads in [1usize, 2, 7] {
            let out = parallel_for(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_inputs_and_zero_tasks_work() {
        let d = SimDfs::new();
        d.store(Relation::new("R", 2));
        d.store(Relation::new("S", 1));
        let par = ParallelExecutor::with_threads(EngineConfig::unscaled(), 4);
        let stats = par.execute_job(&d, &job(), 0).unwrap();
        assert_eq!(stats.output_tuples, 0);
        assert!(d.exists(&"Z".into()));
    }

    #[test]
    fn reduce_errors_surface_deterministically() {
        struct BadReducer;
        impl Reducer for BadReducer {
            fn reduce(&self, _: &Tuple, _: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
                emit(&"Undeclared".into(), Tuple::from_ints(&[1]));
            }
        }
        let bad = Job {
            name: "bad".into(),
            inputs: vec!["R".into()],
            outputs: vec![],
            mapper: Box::new(KeyByFirst),
            reducer: Box::new(BadReducer),
            config: JobConfig::default(),
            estimate: None,
            filter: None,
        };
        let d = dfs(50);
        let par = ParallelExecutor::with_threads(EngineConfig::unscaled(), 4);
        let err = par.execute_job(&d, &bad, 0).unwrap_err();
        let d2 = dfs(50);
        let sim_err = SimulatedExecutor::new(EngineConfig::unscaled())
            .execute_job(&d2, &bad, 0)
            .unwrap_err();
        assert_eq!(err.to_string(), sim_err.to_string());
    }
}
