//! The MapReduce engine: real execution with metered simulation.

use std::collections::BTreeMap;

use gumbo_common::{ByteSize, Fact, GumboError, Relation, RelationName, Result, Tuple};
use gumbo_storage::SimDfs;

use crate::cluster::{lpt_makespan, Cluster};
use crate::cost::{job_cost, CostConstants, CostModelKind};
use crate::hash::partition;
use crate::job::Job;
use crate::message::Message;
use crate::metrics::{JobStats, ProgramStats, RoundStats};
use crate::profile::{InputPartition, JobProfile};
use crate::program::MrProgram;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Byte scale factor: measured byte/record counts are multiplied by this
    /// before entering the cost model, mapping laptop-sized relations onto
    /// the paper's 100M-tuple regime (e.g. 100k real tuples × scale 1000).
    pub scale: u64,
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Cost-model constants (Table 5).
    pub constants: CostConstants,
    /// Cost model used for *measured* accounting. Execution always behaves
    /// the same; this only affects how observed jobs are priced. The
    /// planner may use a different model (that mismatch is the §5.2
    /// cost-model experiment).
    pub model: CostModelKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scale: 1000,
            cluster: Cluster::default(),
            constants: CostConstants::default(),
            model: CostModelKind::Gumbo,
        }
    }
}

impl EngineConfig {
    /// An unscaled configuration (bytes enter the cost model as measured).
    pub fn unscaled() -> Self {
        EngineConfig { scale: 1, ..EngineConfig::default() }
    }
}

/// The deterministic MapReduce engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    /// Engine configuration.
    pub config: EngineConfig,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// Execute a program round by round against the DFS, returning the
    /// paper's four metrics plus per-job detail.
    pub fn execute(&self, dfs: &mut SimDfs, program: &MrProgram) -> Result<ProgramStats> {
        let mut stats = ProgramStats::default();
        for (round_idx, round) in program.rounds().iter().enumerate() {
            let mut round_jobs = Vec::with_capacity(round.len());
            for job in round {
                round_jobs.push(self.execute_job(dfs, job, round_idx)?);
            }
            let map_tasks: Vec<f64> =
                round_jobs.iter().flat_map(|j| j.map_task_durations.iter().copied()).collect();
            let reduce_tasks: Vec<f64> =
                round_jobs.iter().flat_map(|j| j.reduce_task_durations.iter().copied()).collect();
            stats.round_stats.push(RoundStats {
                map_makespan: lpt_makespan(&map_tasks, self.config.cluster.map_slots()),
                reduce_makespan: lpt_makespan(&reduce_tasks, self.config.cluster.reduce_slots()),
                overhead: self.config.constants.job_overhead,
            });
            stats.jobs.extend(round_jobs);
        }
        Ok(stats)
    }

    /// Execute a single job: map → shuffle → reduce, with full metering.
    pub fn execute_job(&self, dfs: &mut SimDfs, job: &Job, round: usize) -> Result<JobStats> {
        let scale = self.config.scale.max(1);
        let consts = &self.config.constants;

        // ---- map phase -------------------------------------------------
        let mut partitions: Vec<InputPartition> = Vec::with_capacity(job.inputs.len());
        let mut kvs: Vec<(Tuple, Message)> = Vec::new();

        for input_name in &job.inputs {
            let rel = dfs.read(input_name)?;
            let real_input = ByteSize::bytes(rel.estimated_bytes());
            let scaled_input = real_input.scaled(scale);
            let n_facts = rel.len();
            // Mapper (split) count from the *scaled* size — the paper's
            // regime — clamped so every task has at least one real fact.
            let mut mappers = job.config.mappers_for(scaled_input);
            if n_facts > 0 {
                mappers = mappers.min(n_facts);
            }
            let chunk = if n_facts == 0 { 1 } else { n_facts.div_ceil(mappers) };

            let mut map_output_bytes: u64 = 0;
            let mut records_out: u64 = 0;

            // Process facts split by split so packing is per-map-task.
            let facts: Vec<(u64, Fact)> = rel
                .iter()
                .enumerate()
                .map(|(i, t)| (i as u64, Fact::new(input_name.clone(), t.clone())))
                .collect();
            for split in facts.chunks(chunk.max(1)) {
                let mut emitted: Vec<(Tuple, Message)> = Vec::new();
                for (index, fact) in split {
                    job.mapper.map(fact, *index, &mut |k, v| emitted.push((k, v)));
                }
                // Byte accounting: with packing, key bytes are charged once
                // per distinct key within the task; records follow suit.
                if job.config.packing {
                    let mut by_key: BTreeMap<&Tuple, u64> = BTreeMap::new();
                    for (k, v) in &emitted {
                        *by_key.entry(k).or_insert(0) += v.estimated_bytes();
                    }
                    for (k, value_bytes) in &by_key {
                        map_output_bytes += k.estimated_bytes() + value_bytes;
                    }
                    records_out += by_key.len() as u64;
                } else {
                    for (k, v) in &emitted {
                        map_output_bytes += k.estimated_bytes() + v.estimated_bytes();
                    }
                    records_out += emitted.len() as u64;
                }
                kvs.extend(emitted);
            }

            partitions.push(InputPartition {
                label: input_name.to_string(),
                input: scaled_input,
                map_output: ByteSize::bytes(map_output_bytes).scaled(scale),
                records_out: records_out * scale,
                mappers,
            });
        }

        let total_input: ByteSize = partitions.iter().map(|p| p.input).sum();
        let total_map_output: ByteSize = partitions.iter().map(|p| p.map_output).sum();

        // ---- shuffle ----------------------------------------------------
        let reducers = job.config.reducer_policy.reducers(total_input, total_map_output);
        let mut groups: Vec<BTreeMap<Tuple, Vec<Message>>> = vec![BTreeMap::new(); reducers];
        // Per-reducer byte loads: used to distribute simulated reduce-task
        // durations, so data skew (heavy keys) shows up in net time.
        let mut reducer_bytes: Vec<u64> = vec![0; reducers];
        for (k, v) in kvs {
            let p = partition(&k, reducers);
            reducer_bytes[p] += k.estimated_bytes() + v.estimated_bytes();
            groups[p].entry(k).or_default().push(v);
        }

        // ---- reduce phase ----------------------------------------------
        let mut outputs: BTreeMap<RelationName, Relation> = job
            .outputs
            .iter()
            .map(|(name, arity)| (name.clone(), Relation::new(name.clone(), *arity)))
            .collect();
        for group in &groups {
            for (key, values) in group {
                let mut err: Option<GumboError> = None;
                job.reducer.reduce(key, values, &mut |rel_name, tuple| {
                    if err.is_some() {
                        return;
                    }
                    match outputs.get_mut(rel_name) {
                        Some(rel) => {
                            if let Err(e) = rel.insert(tuple) {
                                err = Some(e);
                            }
                        }
                        None => {
                            err = Some(GumboError::Plan(format!(
                                "job {} emitted to undeclared output {rel_name}",
                                job.name
                            )));
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }

        let mut output_tuples = 0u64;
        let mut output_bytes = ByteSize::ZERO;
        for rel in outputs.into_values() {
            output_tuples += rel.len() as u64;
            output_bytes += ByteSize::bytes(rel.estimated_bytes()).scaled(scale);
            dfs.store(rel);
        }

        // ---- metering ---------------------------------------------------
        let profile = JobProfile { partitions, reducers, output: output_bytes };
        let map_cost: f64 = match self.config.model {
            CostModelKind::Gumbo => profile.partitions.iter().map(|p| consts.cost_map(p)).sum(),
            CostModelKind::Wang => {
                job_cost(CostModelKind::Wang, consts, &profile)
                    - consts.job_overhead
                    - consts.cost_red(profile.total_map_output(), reducers, output_bytes)
            }
        };
        let reduce_cost = consts.cost_red(profile.total_map_output(), reducers, output_bytes);
        let total_cost = consts.job_overhead + map_cost + reduce_cost;

        let mut map_task_durations = Vec::new();
        for p in &profile.partitions {
            let per_task = consts.cost_map(p) / p.mappers.max(1) as f64;
            map_task_durations.extend(std::iter::repeat_n(per_task, p.mappers));
        }
        // Distribute the (cost-model) reduce cost over tasks proportionally
        // to their actual byte loads — uniform when there is no data (or no
        // skew). Totals stay faithful to the paper's cost_red; only the
        // wall-clock distribution reflects skew.
        let shuffled: u64 = reducer_bytes.iter().sum();
        let reduce_task_durations: Vec<f64> = if shuffled == 0 {
            vec![reduce_cost / reducers.max(1) as f64; reducers]
        } else {
            reducer_bytes
                .iter()
                .map(|&b| reduce_cost * b as f64 / shuffled as f64)
                .collect()
        };

        Ok(JobStats {
            name: job.name.clone(),
            round,
            profile,
            map_cost,
            reduce_cost,
            total_cost,
            map_task_durations,
            reduce_task_durations,
            output_tuples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobConfig, Mapper, Reducer, ReducerPolicy};
    use crate::message::Payload;

    /// A miniature single-semi-join job (§4.1's repartition join): guard
    /// R(x, z) requests on key z; conditional S(z, y) asserts on key z.
    struct SemiJoinMapper;
    impl Mapper for SemiJoinMapper {
        fn map(&self, fact: &Fact, _index: u64, emit: &mut dyn FnMut(Tuple, Message)) {
            let key = Tuple::new(vec![fact.tuple.get(if fact.relation.as_str() == "R" {
                1
            } else {
                0
            })
            .unwrap()
            .clone()]);
            if fact.relation.as_str() == "R" {
                let out = Tuple::new(vec![fact.tuple.get(0).unwrap().clone()]);
                emit(key, Message::Req { cond: 0, payload: Payload::Tuple(out) });
            } else {
                emit(key, Message::Assert { cond: 0 });
            }
        }
    }

    struct SemiJoinReducer;
    impl Reducer for SemiJoinReducer {
        fn reduce(&self, _key: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
            let asserted = values.iter().any(|m| matches!(m, Message::Assert { cond: 0 }));
            if asserted {
                for m in values {
                    if let Message::Req { cond: 0, payload: Payload::Tuple(t) } = m {
                        emit(&"Z".into(), t.clone());
                    }
                }
            }
        }
    }

    fn semi_join_job() -> Job {
        Job {
            name: "MSJ(Z)".into(),
            inputs: vec!["R".into(), "S".into()],
            outputs: vec![("Z".into(), 1)],
            mapper: Box::new(SemiJoinMapper),
            reducer: Box::new(SemiJoinReducer),
            config: JobConfig::default(),
        }
    }

    fn example3_dfs() -> SimDfs {
        // Example 3: I = {R(1,2), R(4,5), S(2,3)}.
        let mut dfs = SimDfs::new();
        dfs.store(
            Relation::from_tuples(
                "R",
                2,
                vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[4, 5])],
            )
            .unwrap(),
        );
        dfs.store(Relation::from_tuples("S", 2, vec![Tuple::from_ints(&[2, 3])]).unwrap());
        dfs
    }

    #[test]
    fn example3_semijoin_executes_correctly() {
        let mut dfs = example3_dfs();
        let engine = Engine::new(EngineConfig::unscaled());
        let mut program = MrProgram::new();
        program.push_job(semi_join_job());
        let stats = engine.execute(&mut dfs, &program).unwrap();
        let z = dfs.peek(&"Z".into()).unwrap();
        assert_eq!(z.len(), 1);
        assert!(z.contains(&Tuple::from_ints(&[1])));
        assert_eq!(stats.jobs[0].output_tuples, 1);
        assert!(stats.net_time() > 0.0);
        assert!(stats.total_time() >= stats.net_time() || stats.num_jobs() == 1);
    }

    #[test]
    fn per_input_partitions_are_metered_separately() {
        let mut dfs = example3_dfs();
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = engine.execute_job(&mut dfs, &semi_join_job(), 0).unwrap();
        assert_eq!(stats.profile.partitions.len(), 2);
        assert_eq!(stats.profile.partitions[0].label, "R");
        // R has 2 tuples of 20 B; S has 1.
        assert_eq!(stats.profile.partitions[0].input, ByteSize::bytes(40));
        assert_eq!(stats.profile.partitions[1].input, ByteSize::bytes(20));
    }

    #[test]
    fn scale_multiplies_metrics_but_not_results() {
        let mut dfs1 = example3_dfs();
        let mut dfs2 = example3_dfs();
        let e1 = Engine::new(EngineConfig { scale: 1, ..EngineConfig::default() });
        let e2 = Engine::new(EngineConfig { scale: 1_000_000, ..EngineConfig::default() });
        let s1 = e1.execute_job(&mut dfs1, &semi_join_job(), 0).unwrap();
        let s2 = e2.execute_job(&mut dfs2, &semi_join_job(), 0).unwrap();
        // Same logical result.
        assert_eq!(dfs1.peek(&"Z".into()).unwrap(), dfs2.peek(&"Z".into()).unwrap());
        // Scaled metrics.
        assert_eq!(s2.input_bytes(), s1.input_bytes().scaled(1_000_000));
        assert!(s2.total_cost > s1.total_cost);
    }

    #[test]
    fn undeclared_output_is_an_error() {
        struct BadReducer;
        impl Reducer for BadReducer {
            fn reduce(&self, _: &Tuple, _: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
                emit(&"Nope".into(), Tuple::from_ints(&[1]));
            }
        }
        let mut dfs = example3_dfs();
        let job = Job {
            name: "bad".into(),
            inputs: vec!["R".into()],
            outputs: vec![],
            mapper: Box::new(SemiJoinMapper),
            reducer: Box::new(BadReducer),
            config: JobConfig::default(),
        };
        let engine = Engine::new(EngineConfig::unscaled());
        assert!(engine.execute_job(&mut dfs, &job, 0).is_err());
    }

    #[test]
    fn declared_outputs_exist_even_when_empty() {
        let mut dfs = SimDfs::new();
        dfs.store(Relation::new("R", 2));
        dfs.store(Relation::new("S", 2));
        let engine = Engine::new(EngineConfig::unscaled());
        engine.execute_job(&mut dfs, &semi_join_job(), 0).unwrap();
        assert!(dfs.exists(&"Z".into()));
        assert_eq!(dfs.peek(&"Z".into()).unwrap().len(), 0);
    }

    #[test]
    fn packing_reduces_shuffle_bytes() {
        // Many R tuples sharing one join key: packed key bytes counted once.
        let mut rel = Relation::new("R", 2);
        for i in 0..100 {
            rel.insert(Tuple::from_ints(&[i, 7])).unwrap();
        }
        let mut dfs_packed = SimDfs::new();
        dfs_packed.store(rel.clone());
        dfs_packed.store(Relation::from_tuples("S", 2, vec![Tuple::from_ints(&[7, 0])]).unwrap());
        let mut dfs_plain = SimDfs::new();
        dfs_plain.store(rel);
        dfs_plain.store(Relation::from_tuples("S", 2, vec![Tuple::from_ints(&[7, 0])]).unwrap());

        let engine = Engine::new(EngineConfig::unscaled());
        let mut packed_job = semi_join_job();
        packed_job.config.packing = true;
        let mut plain_job = semi_join_job();
        plain_job.config.packing = false;

        let packed = engine.execute_job(&mut dfs_packed, &packed_job, 0).unwrap();
        let plain = engine.execute_job(&mut dfs_plain, &plain_job, 0).unwrap();
        assert!(packed.communication_bytes() < plain.communication_bytes());
        // Results identical.
        assert_eq!(
            dfs_packed.peek(&"Z".into()).unwrap(),
            dfs_plain.peek(&"Z".into()).unwrap()
        );
    }

    #[test]
    fn fixed_reducer_policy_is_respected() {
        let mut dfs = example3_dfs();
        let mut job = semi_join_job();
        job.config.reducer_policy = ReducerPolicy::Fixed(7);
        let engine = Engine::new(EngineConfig::unscaled());
        let stats = engine.execute_job(&mut dfs, &job, 0).unwrap();
        assert_eq!(stats.profile.reducers, 7);
        assert_eq!(stats.reduce_task_durations.len(), 7);
    }

    #[test]
    fn missing_input_errors() {
        let mut dfs = SimDfs::new();
        let engine = Engine::new(EngineConfig::unscaled());
        assert!(engine.execute_job(&mut dfs, &semi_join_job(), 0).is_err());
    }

    #[test]
    fn round_concurrency_lowers_net_time() {
        // Two identical independent jobs: one round of two jobs must have a
        // lower net time than two rounds of one (same total time).
        let make_dfs = || {
            let mut dfs = example3_dfs();
            dfs.store(
                Relation::from_tuples(
                    "R2",
                    2,
                    vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[4, 5])],
                )
                .unwrap(),
            );
            dfs.store(Relation::from_tuples("S2", 2, vec![Tuple::from_ints(&[2, 3])]).unwrap());
            dfs
        };
        let job2 = || Job {
            name: "MSJ(Z2)".into(),
            inputs: vec!["R2".into(), "S2".into()],
            outputs: vec![("Z2".into(), 1)],
            mapper: Box::new(SemiJoinMapper2),
            reducer: Box::new(SemiJoinReducer2),
            config: JobConfig::default(),
        };

        struct SemiJoinMapper2;
        impl Mapper for SemiJoinMapper2 {
            fn map(&self, fact: &Fact, _i: u64, emit: &mut dyn FnMut(Tuple, Message)) {
                let pos = if fact.relation.as_str() == "R2" { 1 } else { 0 };
                let key = Tuple::new(vec![fact.tuple.get(pos).unwrap().clone()]);
                if fact.relation.as_str() == "R2" {
                    let out = Tuple::new(vec![fact.tuple.get(0).unwrap().clone()]);
                    emit(key, Message::Req { cond: 0, payload: Payload::Tuple(out) });
                } else {
                    emit(key, Message::Assert { cond: 0 });
                }
            }
        }
        struct SemiJoinReducer2;
        impl Reducer for SemiJoinReducer2 {
            fn reduce(&self, _k: &Tuple, values: &[Message], emit: &mut dyn FnMut(&RelationName, Tuple)) {
                if values.iter().any(|m| matches!(m, Message::Assert { .. })) {
                    for m in values {
                        if let Message::Req { payload: Payload::Tuple(t), .. } = m {
                            emit(&"Z2".into(), t.clone());
                        }
                    }
                }
            }
        }

        let engine = Engine::new(EngineConfig::default());
        let mut parallel = MrProgram::new();
        parallel.push_round(vec![semi_join_job(), job2()]);
        let mut sequential = MrProgram::new();
        sequential.push_job(semi_join_job());
        sequential.push_job(job2());

        let mut d1 = make_dfs();
        let p_stats = engine.execute(&mut d1, &parallel).unwrap();
        let mut d2 = make_dfs();
        let s_stats = engine.execute(&mut d2, &sequential).unwrap();

        assert!(p_stats.net_time() < s_stats.net_time());
        assert!((p_stats.total_time() - s_stats.total_time()).abs() < 1e-9);
    }
}
