//! The columnar (batch-at-a-time) data plane of the shuffle.
//!
//! [`crate::shuffle::SpillingPartition`] moves owned `(Tuple, Message)`
//! pairs — one heap allocation per tuple, one budget interaction and one
//! codec call per pair. This module is the same machinery re-expressed
//! over [`gumbo_common::TupleBatch`] columns:
//!
//! * [`PairBatch`] — a columnar batch of `(key, message)` pairs: keys and
//!   payload tuples live in per-arity [`TupleBatch`] arenas (contiguous
//!   `i64` cells plus a string dictionary), message metadata in parallel
//!   flat vectors. Pushing a pair appends plain integers — no per-pair
//!   heap blocks;
//! * [`BatchPartition`] — the reducer-partition buffer. It sorts by key
//!   *by index* (a `u32` permutation; tuples never move), charges the
//!   shared [`MemoryBudget`] once per frame-sized chunk instead of once
//!   per pair, and spills length-prefixed **columnar frames**
//!   ([`gumbo_storage::FrameFormat::Columnar`]) of up to
//!   [`ROWS_PER_FRAME`] rows;
//! * [`BatchGroupStream`] — the k-way merge the reducer consumes,
//!   iterating zero-copy [`TupleView`]s over decoded frame buffers and
//!   materializing one owned key per *group* (not per pair).
//!
//! **Equivalence.** Grouping order is identical to the pair plane: runs
//! are stable-sorted contiguous slices of the emission-order sequence,
//! keys ascend under `Tuple`'s order (which [`TupleView`]'s order
//! replicates exactly), and ties drain earlier sources first. Byte
//! accounting is identical too — a row's bytes are
//! `key.estimated_bytes() + message.estimated_bytes()` computed from the
//! columnar form — so `reducer_bytes`, spill volumes and every
//! `JobStats` counter match the pair plane number for number. Spill
//! *statistics* remain excluded from cross-runtime equivalence, as
//! before.

use std::cmp::Ordering;

use gumbo_common::{Cell, GumboError, Result, Tuple, TupleBatch, TupleView};
use gumbo_storage::{Compression, RunReader, RunWriter};

use crate::message::{Message, Payload};
use crate::shuffle::{MemoryBudget, Run, ShuffleSpill, SpillStats, MERGE_FANIN, UNLIMITED_GRANULE};

/// Maximum rows per spilled columnar frame: large enough to amortize the
/// frame header and the dictionary, small enough that a reading merge
/// holds only a bounded window of each run in memory.
pub const ROWS_PER_FRAME: usize = 512;

// ---------------------------------------------------------------------------
// Tuple store: mixed-arity tuples over per-arity columnar arenas
// ---------------------------------------------------------------------------

/// Where one stored tuple lives: which per-arity batch, which row.
#[derive(Debug, Clone, Copy)]
struct Loc {
    arity: u32,
    row: u32,
}

/// Columnar storage for a sequence of tuples of *mixed* arity: one
/// [`TupleBatch`] per arity (the batch index is the arity) plus a
/// per-tuple locator, so slot `i` still names the `i`-th pushed tuple.
#[derive(Debug, Default)]
pub struct TupleStore {
    by_arity: Vec<TupleBatch>,
    locs: Vec<Loc>,
}

impl TupleStore {
    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// True when no tuple has been stored.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    fn batch_for(&mut self, arity: usize) -> &mut TupleBatch {
        while self.by_arity.len() <= arity {
            self.by_arity.push(TupleBatch::new(self.by_arity.len()));
        }
        &mut self.by_arity[arity]
    }

    /// Append an owned tuple; returns its slot.
    pub fn push_tuple(&mut self, t: &Tuple) -> u32 {
        let arity = t.arity();
        let batch = self.batch_for(arity);
        let row = u32::try_from(batch.len()).expect("batch under 2^32 rows");
        batch.push_tuple(t);
        let slot = u32::try_from(self.locs.len()).expect("store under 2^32 tuples");
        self.locs.push(Loc {
            arity: arity as u32,
            row,
        });
        slot
    }

    /// Copy slot `slot` of `src` into this store (columnar row copy, no
    /// `Tuple` materialized); returns the new slot.
    pub fn push_from(&mut self, src: &TupleStore, slot: u32) -> u32 {
        let loc = src.locs[slot as usize];
        let src_batch = &src.by_arity[loc.arity as usize];
        let batch = self.batch_for(loc.arity as usize);
        let row = u32::try_from(batch.len()).expect("batch under 2^32 rows");
        batch.push_row(src_batch, loc.row as usize);
        let new_slot = u32::try_from(self.locs.len()).expect("store under 2^32 tuples");
        self.locs.push(Loc {
            arity: loc.arity,
            row,
        });
        new_slot
    }

    /// Zero-copy view of slot `slot`.
    pub fn view(&self, slot: u32) -> TupleView<'_> {
        let loc = self.locs[slot as usize];
        self.by_arity[loc.arity as usize].view(loc.row as usize)
    }

    /// Materialize slot `slot` as an owned [`Tuple`].
    pub fn tuple(&self, slot: u32) -> Tuple {
        let loc = self.locs[slot as usize];
        self.by_arity[loc.arity as usize].tuple(loc.row as usize)
    }

    /// Global string ranks across every per-arity dictionary:
    /// `tables[arity][code]` is the rank of that dictionary entry within
    /// the sorted set of all distinct strings in the store. Equal strings
    /// share a rank even across dictionaries, so comparing ranks is
    /// exactly comparing the strings — once per *distinct* string instead
    /// of once per row comparison.
    fn rank_tables(&self) -> Vec<Vec<u32>> {
        let mut entries: Vec<(&str, usize, u32)> = Vec::new();
        for (b, batch) in self.by_arity.iter().enumerate() {
            let dict = batch.dict();
            for code in 0..dict.len() as u32 {
                entries.push((dict.get(code), b, code));
            }
        }
        let mut tables: Vec<Vec<u32>> = self
            .by_arity
            .iter()
            .map(|b| vec![0; b.dict().len()])
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut rank = 0u32;
        let mut prev: Option<&str> = None;
        for (s, b, code) in entries {
            match prev {
                Some(p) if p == s => {}
                Some(_) => {
                    rank += 1;
                    prev = Some(s);
                }
                None => prev = Some(s),
            }
            tables[b][code as usize] = rank;
        }
        tables
    }

    /// Compare two slots in `Tuple` order using precomputed rank tables
    /// ([`rank_tables`](Self::rank_tables)) — every cell comparison is an
    /// integer comparison, strings are never touched.
    fn cmp_ranked(&self, a: u32, b: u32, ranks: &[Vec<u32>]) -> Ordering {
        let la = self.locs[a as usize];
        let lb = self.locs[b as usize];
        let ba = &self.by_arity[la.arity as usize];
        let bb = &self.by_arity[lb.arity as usize];
        let shared = la.arity.min(lb.arity) as usize;
        for c in 0..shared {
            let ord = match (ba.cell(la.row as usize, c), bb.cell(lb.row as usize, c)) {
                (Cell::Int(x), Cell::Int(y)) => x.cmp(&y),
                (Cell::Int(_), Cell::Str(_)) => Ordering::Less,
                (Cell::Str(_), Cell::Int(_)) => Ordering::Greater,
                (Cell::Str(x), Cell::Str(y)) => {
                    ranks[la.arity as usize][x as usize].cmp(&ranks[lb.arity as usize][y as usize])
                }
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        la.arity.cmp(&lb.arity)
    }

    /// Estimated bytes of slot `slot` (paper layout).
    pub fn bytes(&self, slot: u32) -> u64 {
        let loc = self.locs[slot as usize];
        self.by_arity[loc.arity as usize].row_bytes(loc.row as usize)
    }

    fn clear(&mut self) {
        for batch in &mut self.by_arity {
            batch.clear();
        }
        self.locs.clear();
    }

    fn encode_into(&self, out: &mut Vec<u8>) -> Result<()> {
        out.extend_from_slice(&(self.by_arity.len() as u32).to_le_bytes());
        for batch in &self.by_arity {
            batch.encode_into(out)?;
        }
        out.extend_from_slice(&(self.locs.len() as u32).to_le_bytes());
        for loc in &self.locs {
            out.extend_from_slice(&loc.arity.to_le_bytes());
            out.extend_from_slice(&loc.row.to_le_bytes());
        }
        Ok(())
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Result<TupleStore> {
        let n_batches = read_u32(buf, pos)? as usize;
        let mut by_arity = Vec::with_capacity(n_batches);
        for _ in 0..n_batches {
            by_arity.push(TupleBatch::decode_from(buf, pos)?);
        }
        let n_locs = read_u32(buf, pos)? as usize;
        let mut locs = Vec::with_capacity(n_locs);
        for _ in 0..n_locs {
            let arity = read_u32(buf, pos)?;
            let row = read_u32(buf, pos)?;
            let valid = by_arity
                .get(arity as usize)
                .is_some_and(|b| (row as usize) < b.len());
            if !valid {
                return Err(GumboError::Storage(
                    "corrupt columnar frame: tuple locator out of range".into(),
                ));
            }
            locs.push(Loc { arity, row });
        }
        Ok(TupleStore { by_arity, locs })
    }
}

// ---------------------------------------------------------------------------
// Message store: struct-of-arrays for the message vocabulary
// ---------------------------------------------------------------------------

const KIND_ASSERT: u8 = 0;
const KIND_REQ_TUPLE: u8 = 1;
const KIND_REQ_REF: u8 = 2;
const KIND_TAG: u8 = 3;
const KIND_GUARD_TUPLE: u8 = 4;

/// Columnar storage for [`Message`]s: one kind byte plus three parallel
/// metadata columns per message, with payload tuples in a [`TupleStore`].
///
/// | kind | `small` | `aux` | `wide` |
/// |---|---|---|---|
/// | `Assert` | `cond` | – | – |
/// | `Req`+`Payload::Tuple` | `cond` | payload slot | – |
/// | `Req`+`Payload::Ref` | `cond` | `guard` | `id` |
/// | `Tag` | `rel` | – | – |
/// | `GuardTuple` | `guard` | payload slot | – |
#[derive(Debug, Default)]
struct MsgStore {
    kinds: Vec<u8>,
    small: Vec<u32>,
    aux: Vec<u32>,
    wide: Vec<u64>,
    tuples: TupleStore,
}

impl MsgStore {
    fn len(&self) -> usize {
        self.kinds.len()
    }

    fn push(&mut self, m: &Message) {
        let (kind, small, aux, wide) = match m {
            Message::Assert { cond } => (KIND_ASSERT, *cond, 0, 0),
            Message::Req {
                cond,
                payload: Payload::Tuple(t),
            } => (KIND_REQ_TUPLE, *cond, self.tuples.push_tuple(t), 0),
            Message::Req {
                cond,
                payload: Payload::Ref { guard, id },
            } => (KIND_REQ_REF, *cond, *guard, *id),
            Message::Tag { rel } => (KIND_TAG, *rel, 0, 0),
            Message::GuardTuple { guard, tuple } => {
                (KIND_GUARD_TUPLE, *guard, self.tuples.push_tuple(tuple), 0)
            }
        };
        self.kinds.push(kind);
        self.small.push(small);
        self.aux.push(aux);
        self.wide.push(wide);
    }

    fn push_from(&mut self, src: &MsgStore, row: usize) {
        let kind = src.kinds[row];
        let aux = match kind {
            KIND_REQ_TUPLE | KIND_GUARD_TUPLE => self.tuples.push_from(&src.tuples, src.aux[row]),
            _ => src.aux[row],
        };
        self.kinds.push(kind);
        self.small.push(src.small[row]);
        self.aux.push(aux);
        self.wide.push(src.wide[row]);
    }

    /// Materialize message `row` (payload tuples are single-allocation
    /// copies whose string fields bump dictionary `Arc`s).
    fn message(&self, row: usize) -> Message {
        match self.kinds[row] {
            KIND_ASSERT => Message::Assert {
                cond: self.small[row],
            },
            KIND_REQ_TUPLE => Message::Req {
                cond: self.small[row],
                payload: Payload::Tuple(self.tuples.tuple(self.aux[row])),
            },
            KIND_REQ_REF => Message::Req {
                cond: self.small[row],
                payload: Payload::Ref {
                    guard: self.aux[row],
                    id: self.wide[row],
                },
            },
            KIND_TAG => Message::Tag {
                rel: self.small[row],
            },
            KIND_GUARD_TUPLE => Message::GuardTuple {
                guard: self.small[row],
                tuple: self.tuples.tuple(self.aux[row]),
            },
            other => unreachable!("validated message kind {other}"),
        }
    }

    /// `Message::estimated_bytes` of row `row`, computed columnar.
    fn bytes(&self, row: usize) -> u64 {
        match self.kinds[row] {
            KIND_ASSERT | KIND_TAG => 4,
            KIND_REQ_REF => 4 + 10,
            // Req+Tuple and GuardTuple: header plus the payload tuple.
            _ => 4 + self.tuples.bytes(self.aux[row]),
        }
    }

    fn clear(&mut self) {
        self.kinds.clear();
        self.small.clear();
        self.aux.clear();
        self.wide.clear();
        self.tuples.clear();
    }

    fn encode_into(&self, out: &mut Vec<u8>) -> Result<()> {
        out.extend_from_slice(&(self.kinds.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.kinds);
        for v in &self.small {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.aux {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let has_wide = self.wide.iter().any(|&w| w != 0);
        out.push(u8::from(has_wide));
        if has_wide {
            for v in &self.wide {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        self.tuples.encode_into(out)
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Result<MsgStore> {
        let rows = read_u32(buf, pos)? as usize;
        let kinds = read_slice(buf, pos, rows)?.to_vec();
        let mut small = Vec::with_capacity(rows);
        for _ in 0..rows {
            small.push(read_u32(buf, pos)?);
        }
        let mut aux = Vec::with_capacity(rows);
        for _ in 0..rows {
            aux.push(read_u32(buf, pos)?);
        }
        let wide = match read_slice(buf, pos, 1)?[0] {
            0 => vec![0u64; rows],
            1 => {
                let mut wide = Vec::with_capacity(rows);
                for _ in 0..rows {
                    wide.push(read_u64(buf, pos)?);
                }
                wide
            }
            other => {
                return Err(GumboError::Storage(format!(
                    "corrupt columnar frame: bad wide-column flag {other}"
                )))
            }
        };
        let tuples = TupleStore::decode_from(buf, pos)?;
        for (row, &kind) in kinds.iter().enumerate() {
            let payload_ok = match kind {
                KIND_ASSERT | KIND_REQ_REF | KIND_TAG => true,
                KIND_REQ_TUPLE | KIND_GUARD_TUPLE => (aux[row] as usize) < tuples.len(),
                other => {
                    return Err(GumboError::Storage(format!(
                        "corrupt columnar frame: unknown message kind {other}"
                    )))
                }
            };
            if !payload_ok {
                return Err(GumboError::Storage(
                    "corrupt columnar frame: payload slot out of range".into(),
                ));
            }
        }
        Ok(MsgStore {
            kinds,
            small,
            aux,
            wide,
            tuples,
        })
    }
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(
        read_slice(buf, pos, 4)?.try_into().expect("4 bytes"),
    ))
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(
        read_slice(buf, pos, 8)?.try_into().expect("8 bytes"),
    ))
}

fn read_slice<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| GumboError::Storage("truncated columnar frame".into()))?;
    let out = &buf[*pos..end];
    *pos = end;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pair batch
// ---------------------------------------------------------------------------

/// A columnar batch of `(key, message)` pairs in emission order.
#[derive(Debug, Default)]
pub struct PairBatch {
    keys: TupleStore,
    msgs: MsgStore,
    bytes: u64,
}

impl PairBatch {
    /// An empty batch.
    pub fn new() -> PairBatch {
        PairBatch::default()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no pair has been pushed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Estimated bytes over all rows: exactly
    /// `Σ key.estimated_bytes() + message.estimated_bytes()`.
    pub fn estimated_bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one pair, decomposing it into the columnar arenas.
    pub fn push_pair(&mut self, key: &Tuple, msg: &Message) {
        let slot = self.keys.push_tuple(key);
        self.msgs.push(msg);
        self.bytes += self.keys.bytes(slot) + self.msgs.bytes(slot as usize);
    }

    /// Copy row `row` of `src` into this batch — a columnar cell copy, no
    /// owned `Tuple` or `Message` in between.
    pub fn push_row(&mut self, src: &PairBatch, row: usize) {
        let slot = self.keys.push_from(&src.keys, row as u32);
        self.msgs.push_from(&src.msgs, row);
        self.bytes += self.keys.bytes(slot) + self.msgs.bytes(slot as usize);
    }

    /// Zero-copy view of row `row`'s key.
    pub fn key_view(&self, row: usize) -> TupleView<'_> {
        self.keys.view(row as u32)
    }

    /// Materialize row `row`'s key.
    pub fn key_tuple(&self, row: usize) -> Tuple {
        self.keys.tuple(row as u32)
    }

    /// Materialize row `row`'s message.
    pub fn message(&self, row: usize) -> Message {
        self.msgs.message(row)
    }

    /// Estimated bytes of row `row` (key + message, paper layout).
    pub fn row_bytes(&self, row: usize) -> u64 {
        self.keys.bytes(row as u32) + self.msgs.bytes(row)
    }

    /// The stable key-sorted permutation of `0..len()`: an index sort —
    /// four bytes per row move, the tuples themselves never do. Equal
    /// keys keep emission order.
    pub fn sort_indices(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        // Rank the dictionaries once, then sort on integers only: string
        // cells compare by rank, never by bytes.
        let ranks = self.keys.rank_tables();
        order.sort_by(|&a, &b| self.keys.cmp_ranked(a, b, &ranks));
        order
    }

    /// Drop every row, keeping arena capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.msgs.clear();
        self.bytes = 0;
    }

    /// Materialize every row (tests and edge conversions).
    pub fn to_pairs(&self) -> Vec<(Tuple, Message)> {
        (0..self.len())
            .map(|r| (self.key_tuple(r), self.message(r)))
            .collect()
    }

    /// Append the batch's wire encoding (a columnar spill frame body).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<()> {
        self.keys.encode_into(out)?;
        self.msgs.encode_into(out)
    }

    /// Decode one frame body produced by [`encode_into`](Self::encode_into).
    pub fn decode(buf: &[u8]) -> Result<PairBatch> {
        let mut pos = 0;
        let keys = TupleStore::decode_from(buf, &mut pos)?;
        let msgs = MsgStore::decode_from(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(GumboError::Storage(
                "corrupt columnar frame: trailing bytes".into(),
            ));
        }
        if keys.len() != msgs.len() {
            return Err(GumboError::Storage(
                "corrupt columnar frame: key/message row mismatch".into(),
            ));
        }
        let mut batch = PairBatch {
            keys,
            msgs,
            bytes: 0,
        };
        batch.bytes = (0..batch.len()).map(|r| batch.row_bytes(r)).sum();
        Ok(batch)
    }
}

// ---------------------------------------------------------------------------
// Spilling batch partition
// ---------------------------------------------------------------------------

/// The columnar twin of [`crate::shuffle::SpillingPartition`]: one
/// reducer partition's buffer, charging the shared budget *per appended
/// batch* and spilling index-sorted columnar frames.
pub struct BatchPartition<'a> {
    partition: usize,
    share: u64,
    granule: u64,
    budget: &'a MemoryBudget,
    spill: &'a ShuffleSpill,
    compression: Compression,
    batch: PairBatch,
    /// Bytes currently reserved in the budget for `batch` (may exceed the
    /// buffer by part of a granule, and fall short by at most one
    /// append that could not be reserved before its flush).
    charged: u64,
    total_bytes: u64,
    runs: Vec<Run>,
    next_seq: u64,
    stats: SpillStats,
}

impl<'a> BatchPartition<'a> {
    /// An empty buffer for reducer `partition` of `partitions`.
    pub fn new(
        partition: usize,
        budget: &'a MemoryBudget,
        spill: &'a ShuffleSpill,
        partitions: usize,
    ) -> BatchPartition<'a> {
        let share = budget.partition_share(partitions);
        // Charge in granules so a batch append is one budget interaction:
        // a quarter-share granule keeps the tracked figure within the
        // limit's resolution while bounding atomic traffic.
        let granule = match budget.limit() {
            None => UNLIMITED_GRANULE,
            Some(_) => (share / 4).clamp(64, UNLIMITED_GRANULE),
        };
        BatchPartition {
            partition,
            share,
            granule,
            budget,
            spill,
            compression: budget.spec().run_compression(),
            batch: PairBatch::new(),
            charged: 0,
            total_bytes: 0,
            runs: Vec::new(),
            next_seq: 0,
            stats: SpillStats::default(),
        }
    }

    /// Total estimated bytes pushed into this partition so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Accept one pair (edge entry point; the executors append whole
    /// batches via [`push_rows`](Self::push_rows) /
    /// [`push_batch`](Self::push_batch) instead).
    pub fn push_pair(&mut self, key: &Tuple, msg: &Message) -> Result<()> {
        let before = self.batch.estimated_bytes();
        self.batch.push_pair(key, msg);
        self.total_bytes += self.batch.estimated_bytes() - before;
        self.settle()
    }

    /// Append the selected rows of `src` (in `rows` order), settling the
    /// budget once per frame-sized chunk so the buffer never runs more
    /// than one frame past what the budget has granted.
    pub fn push_rows(&mut self, src: &PairBatch, rows: &[u32]) -> Result<()> {
        for chunk in rows.chunks(ROWS_PER_FRAME) {
            let before = self.batch.estimated_bytes();
            for &row in chunk {
                self.batch.push_row(src, row as usize);
            }
            self.total_bytes += self.batch.estimated_bytes() - before;
            self.settle()?;
        }
        Ok(())
    }

    /// Append every row of `src`; one budget interaction per frame-sized
    /// chunk, as in [`push_rows`](Self::push_rows).
    pub fn push_batch(&mut self, src: &PairBatch) -> Result<()> {
        let mut row = 0;
        while row < src.len() {
            let end = (row + ROWS_PER_FRAME).min(src.len());
            let before = self.batch.estimated_bytes();
            while row < end {
                self.batch.push_row(src, row);
                row += 1;
            }
            self.total_bytes += self.batch.estimated_bytes() - before;
            self.settle()?;
        }
        Ok(())
    }

    /// Bring the budget charge in line with the buffer: grant in
    /// granules, flush when the budget refuses or the share is crossed.
    fn settle(&mut self) -> Result<()> {
        let buffered = self.batch.estimated_bytes();
        if self.budget.limit().is_none() {
            if buffered > self.charged {
                let grant = (buffered - self.charged).div_ceil(self.granule) * self.granule;
                let granted = self.budget.try_charge(grant);
                debug_assert!(granted, "an unlimited budget always grants");
                self.charged += grant;
            }
            return Ok(());
        }
        if buffered > self.charged {
            let need = buffered - self.charged;
            let grant = need.div_ceil(self.granule) * self.granule;
            if self.budget.try_charge(grant) {
                self.charged += grant;
            } else if self.budget.try_charge(need) {
                // The rounded-up granule did not fit but the exact need
                // does: take it rather than spilling early.
                self.charged += need;
            } else {
                // Global budget exhausted: flush what we hold — including
                // the (briefly unreserved) freshly appended rows.
                crate::shuffle::BUDGET_DENIALS.incr();
                gumbo_obs::event("budget:exhausted", |f| {
                    f.str("job", self.spill.label());
                    f.u64("partition", self.partition as u64);
                    f.u64("denied_bytes", need);
                    f.u64("buffered_bytes", buffered);
                });
                return self.flush();
            }
        }
        if buffered > self.share {
            return self.flush();
        }
        Ok(())
    }

    /// Index-sort the buffer by key and write it out as one run of
    /// columnar frames.
    fn flush(&mut self) -> Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        // The span's `bytes` field is exactly this flush's increment of
        // `JobStats.spilled_bytes` — traces and stats stay reconcilable.
        let mut span = gumbo_obs::span_with("spill:run", |f| {
            f.str("job", self.spill.label());
            f.u64("partition", self.partition as u64);
            f.u64("bytes", self.batch.estimated_bytes());
            f.u64("pairs", self.batch.len() as u64);
        });
        let order = self.batch.sort_indices();
        let path = self.spill.run_path(self.partition, self.next_seq)?;
        self.next_seq += 1;
        let mut writer = RunWriter::create_with(&path, self.compression)?;
        let mut chunk = PairBatch::new();
        let mut frame = Vec::new();
        for rows in order.chunks(ROWS_PER_FRAME) {
            chunk.clear();
            for &row in rows {
                chunk.push_row(&self.batch, row as usize);
            }
            frame.clear();
            chunk.encode_into(&mut frame)?;
            writer.push_columnar(&frame)?;
        }
        let (_, disk_bytes) = writer.finish()?;
        span.record(|f| f.u64("disk_bytes", disk_bytes));
        crate::shuffle::SPILL_RUNS.incr();
        crate::shuffle::SPILL_BYTES.add(self.batch.estimated_bytes());
        self.runs.push(Run { path });
        self.stats.spill_files += 1;
        self.stats.spilled_bytes += self.batch.estimated_bytes();
        self.stats.spilled_disk_bytes += disk_bytes;
        self.budget.release(self.charged);
        self.charged = 0;
        self.batch.clear();
        Ok(())
    }

    /// Finish the partition: collapse runs under the merge fan-in,
    /// index-sort the in-memory tail, and hand back the grouped stream
    /// plus this partition's spill statistics.
    pub fn into_groups(mut self) -> Result<(BatchGroupStream<'a>, SpillStats)> {
        // Intermediate passes, identical in shape to the pair plane:
        // merge the *oldest* runs into one (ties drain earlier runs
        // first) until runs + tail fit the fan-in; the merged run holds
        // the oldest data and stays first.
        while self.runs.len() + 1 > MERGE_FANIN {
            let take = MERGE_FANIN.min(self.runs.len());
            let _span = gumbo_obs::span_with("spill:merge", |f| {
                f.str("job", self.spill.label());
                f.u64("partition", self.partition as u64);
                f.u64("fan_in", take as u64);
            });
            let oldest: Vec<Run> = self.runs.drain(..take).collect();
            let mut sources = Vec::with_capacity(oldest.len());
            for run in &oldest {
                sources.push(BatchSource::open_run(&run.path)?);
            }
            let path = self.spill.run_path(self.partition, self.next_seq)?;
            self.next_seq += 1;
            let mut writer = RunWriter::create_with(&path, self.compression)?;
            let mut merge = BatchMerge { sources };
            let mut staging = PairBatch::new();
            let mut frame = Vec::new();
            while let Some(i) = merge.min_source() {
                let s = &mut merge.sources[i];
                staging.push_row(&s.batch, s.head_row());
                s.advance()?;
                if staging.len() == ROWS_PER_FRAME {
                    frame.clear();
                    staging.encode_into(&mut frame)?;
                    writer.push_columnar(&frame)?;
                    staging.clear();
                }
            }
            if !staging.is_empty() {
                frame.clear();
                staging.encode_into(&mut frame)?;
                writer.push_columnar(&frame)?;
            }
            writer.finish()?;
            self.runs.insert(0, Run { path });
            crate::shuffle::MERGE_PASSES.incr();
            self.stats.spill_files += 1;
            self.stats.merge_passes += 1;
        }

        let mut sources = Vec::with_capacity(self.runs.len() + 1);
        for run in &self.runs {
            sources.push(BatchSource::open_run(&run.path)?);
        }
        sources.push(BatchSource::from_memory(std::mem::take(&mut self.batch)));
        let stats = self.stats;
        Ok((
            BatchGroupStream {
                merge: BatchMerge { sources },
                budget: self.budget,
                charged: std::mem::take(&mut self.charged),
                _runs: std::mem::take(&mut self.runs),
            },
            stats,
        ))
    }
}

impl Drop for BatchPartition<'_> {
    fn drop(&mut self) {
        self.budget.release(self.charged);
    }
}

// ---------------------------------------------------------------------------
// Streaming merge over columnar sources
// ---------------------------------------------------------------------------

/// One merge input: a run of columnar frames on disk (decoded one frame
/// at a time — a bounded window of the run) or the index-sorted
/// in-memory tail.
struct BatchSource {
    reader: Option<RunReader>,
    batch: PairBatch,
    /// Row visit order within `batch`: the sort permutation for the
    /// in-memory tail, identity for run frames (flushed pre-sorted).
    order: Vec<u32>,
    at: usize,
}

impl BatchSource {
    fn open_run(path: &std::path::Path) -> Result<BatchSource> {
        let mut source = BatchSource {
            reader: Some(RunReader::open(path)?),
            batch: PairBatch::new(),
            order: Vec::new(),
            at: 0,
        };
        source.refill()?;
        Ok(source)
    }

    fn from_memory(batch: PairBatch) -> BatchSource {
        let order = batch.sort_indices();
        BatchSource {
            reader: None,
            batch,
            order,
            at: 0,
        }
    }

    /// The current row's key, or `None` when drained.
    fn head(&self) -> Option<TupleView<'_>> {
        (self.at < self.order.len()).then(|| self.batch.key_view(self.order[self.at] as usize))
    }

    /// The current row index into `batch` (caller checked `head()`).
    fn head_row(&self) -> usize {
        self.order[self.at] as usize
    }

    fn advance(&mut self) -> Result<()> {
        self.at += 1;
        if self.at >= self.order.len() {
            self.refill()?;
        }
        Ok(())
    }

    fn refill(&mut self) -> Result<()> {
        let Some(reader) = &mut self.reader else {
            return Ok(());
        };
        if let Some(frame) = reader.next_columnar_frame()? {
            self.batch = PairBatch::decode(&frame)?;
            self.order = (0..self.batch.len() as u32).collect();
            self.at = 0;
        }
        Ok(())
    }
}

/// K-way stable merge over sorted columnar sources: keys ascend; equal
/// keys drain earlier sources first, reconstructing global emission
/// order within each key (source order *is* emission order).
struct BatchMerge {
    sources: Vec<BatchSource>,
}

impl BatchMerge {
    /// Index of the source holding the smallest head key (earliest
    /// source wins ties), or `None` when everything is drained.
    fn min_source(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in self.sources.iter().enumerate() {
            let Some(key) = s.head() else { continue };
            match best {
                Some(b) if self.sources[b].head().expect("has head") <= key => {}
                _ => best = Some(i),
            }
        }
        best
    }
}

/// The grouped stream the reducer consumes on the columnar plane — the
/// same contract as [`crate::shuffle::GroupStream`]: keys ascend, values
/// stay in global emission order, and exactly one owned key `Tuple` is
/// materialized per group.
pub struct BatchGroupStream<'a> {
    merge: BatchMerge,
    budget: &'a MemoryBudget,
    charged: u64,
    _runs: Vec<Run>,
}

impl BatchGroupStream<'_> {
    /// The next key group, or `None` when the partition is exhausted.
    pub fn next_group(&mut self) -> Result<Option<(Tuple, Vec<Message>)>> {
        let mut values = Vec::new();
        Ok(self.next_group_into(&mut values)?.map(|key| (key, values)))
    }

    /// The next key group with its values appended into a caller-owned
    /// scratch vector (cleared first).
    pub fn next_group_into(&mut self, values: &mut Vec<Message>) -> Result<Option<Tuple>> {
        values.clear();
        let Some(i) = self.merge.min_source() else {
            return Ok(None);
        };
        let source = &self.merge.sources[i];
        let row = source.head_row();
        let key = source.batch.key_tuple(row);
        values.push(source.batch.message(row));
        self.merge.sources[i].advance()?;
        while let Some(i) = self.merge.min_source() {
            let source = &self.merge.sources[i];
            let row = source.head_row();
            if source.batch.key_view(row).cmp_tuple(&key) != Ordering::Equal {
                break;
            }
            values.push(source.batch.message(row));
            self.merge.sources[i].advance()?;
        }
        Ok(Some(key))
    }
}

impl Drop for BatchGroupStream<'_> {
    fn drop(&mut self) {
        self.budget.release(self.charged);
    }
}

/// Deterministic FNV-1a partition hash of a key view — byte-for-byte the
/// same mixing as [`crate::hash::hash_tuple`], so a key lands on the same
/// reducer whichever data plane carried it.
pub fn hash_view(view: TupleView<'_>) -> u64 {
    crate::hash::hash_view(view)
}

/// Reducer index for a key view under `reducers` reducers — agrees with
/// [`crate::hash::partition`] on the materialized key.
pub fn partition_view(view: TupleView<'_>, reducers: usize) -> usize {
    crate::hash::partition_view(view, reducers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::{MemBudget, SpillingPartition};
    use gumbo_common::Value;

    fn msg_shapes() -> Vec<Message> {
        vec![
            Message::Assert { cond: 3 },
            Message::Tag { rel: u32::MAX },
            Message::Req {
                cond: 1,
                payload: Payload::Tuple(Tuple::new(vec![
                    Value::Int(5),
                    Value::str("bad"),
                    Value::Int(-6),
                ])),
            },
            Message::Req {
                cond: 2,
                payload: Payload::Ref {
                    guard: 9,
                    id: 1 << 40,
                },
            },
            Message::GuardTuple {
                guard: 0,
                tuple: Tuple::new(vec![Value::str("g")]),
            },
        ]
    }

    fn mixed_pairs() -> Vec<(Tuple, Message)> {
        let keys = [
            Tuple::from_ints(&[]),
            Tuple::from_ints(&[1, -7, i64::MAX]),
            Tuple::new(vec![Value::str("hello"), Value::Int(0), Value::str("")]),
            Tuple::from_ints(&[2]),
        ];
        let mut pairs = Vec::new();
        for k in &keys {
            for m in msg_shapes() {
                pairs.push((k.clone(), m));
            }
        }
        pairs
    }

    #[test]
    fn batch_round_trips_every_pair_shape() {
        let pairs = mixed_pairs();
        let mut batch = PairBatch::new();
        for (k, m) in &pairs {
            batch.push_pair(k, m);
        }
        assert_eq!(batch.to_pairs(), pairs);
        assert_eq!(
            batch.estimated_bytes(),
            pairs
                .iter()
                .map(|(k, m)| k.estimated_bytes() + m.estimated_bytes())
                .sum::<u64>()
        );
        for (i, (k, m)) in pairs.iter().enumerate() {
            assert_eq!(
                batch.row_bytes(i),
                k.estimated_bytes() + m.estimated_bytes()
            );
        }
    }

    #[test]
    fn frame_codec_round_trips() {
        let pairs = mixed_pairs();
        let mut batch = PairBatch::new();
        for (k, m) in &pairs {
            batch.push_pair(k, m);
        }
        let mut frame = Vec::new();
        batch.encode_into(&mut frame).unwrap();
        let back = PairBatch::decode(&frame).unwrap();
        assert_eq!(back.to_pairs(), pairs);
        assert_eq!(back.estimated_bytes(), batch.estimated_bytes());
    }

    #[test]
    fn frame_codec_rejects_truncation() {
        let mut batch = PairBatch::new();
        for (k, m) in mixed_pairs() {
            batch.push_pair(&k, &m);
        }
        let mut frame = Vec::new();
        batch.encode_into(&mut frame).unwrap();
        for cut in 0..frame.len() {
            assert!(
                PairBatch::decode(&frame[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn cross_batch_row_copy_preserves_pairs_and_bytes() {
        let pairs = mixed_pairs();
        let mut src = PairBatch::new();
        for (k, m) in &pairs {
            src.push_pair(k, m);
        }
        let mut dst = PairBatch::new();
        for row in (0..src.len()).rev() {
            dst.push_row(&src, row);
        }
        let expected: Vec<_> = pairs.iter().rev().cloned().collect();
        assert_eq!(dst.to_pairs(), expected);
        assert_eq!(dst.estimated_bytes(), src.estimated_bytes());
    }

    #[test]
    fn sort_indices_is_stable_by_key() {
        let mut batch = PairBatch::new();
        for (i, key) in [3i64, 1, 3, 2, 1].iter().enumerate() {
            batch.push_pair(
                &Tuple::from_ints(&[*key]),
                &Message::Assert { cond: i as u32 },
            );
        }
        let order = batch.sort_indices();
        assert_eq!(order, vec![1, 4, 3, 0, 2]);
    }

    /// Group a pair sequence through a `BatchPartition` under `spec`.
    fn group_batched(
        spec: MemBudget,
        pairs: &[(Tuple, Message)],
    ) -> (Vec<(Tuple, Vec<Message>)>, SpillStats, u64) {
        let budget = MemoryBudget::new(spec);
        let spill = ShuffleSpill::new("batch-test");
        let mut part = BatchPartition::new(0, &budget, &spill, 1);
        for (k, v) in pairs {
            part.push_pair(k, v).unwrap();
        }
        let (mut stream, stats) = part.into_groups().unwrap();
        let mut groups = Vec::new();
        while let Some(g) = stream.next_group().unwrap() {
            groups.push(g);
        }
        drop(stream);
        assert_eq!(budget.used(), 0, "all charges released");
        (groups, stats, budget.peak())
    }

    /// The pair-plane reference grouping of the same sequence.
    fn group_legacy(pairs: &[(Tuple, Message)]) -> Vec<(Tuple, Vec<Message>)> {
        let budget = MemoryBudget::unlimited();
        let spill = ShuffleSpill::new("legacy-test");
        let mut part = SpillingPartition::new(0, &budget, &spill, 1);
        for (k, v) in pairs {
            part.push(k.clone(), v.clone()).unwrap();
        }
        let (mut stream, _) = part.into_groups().unwrap();
        let mut groups = Vec::new();
        while let Some(g) = stream.next_group().unwrap() {
            groups.push(g);
        }
        groups
    }

    fn seq_pairs(keys: &[i64]) -> Vec<(Tuple, Message)> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| {
                (
                    Tuple::from_ints(&[k]),
                    Message::Req {
                        cond: i as u32,
                        payload: Payload::Ref {
                            guard: 0,
                            id: i as u64,
                        },
                    },
                )
            })
            .collect()
    }

    #[test]
    fn batched_grouping_matches_pair_grouping_across_budgets() {
        let keys = [3i64, 1, 3, 2, 1, 3, 1, 2, 2, 3, 1, 1];
        let pairs = seq_pairs(&keys);
        let reference = group_legacy(&pairs);
        let (unlimited, stats, _) = group_batched(MemBudget::UNLIMITED, &pairs);
        assert_eq!(unlimited, reference);
        assert_eq!(stats, SpillStats::default());
        for budget in [1u64, 16, 64, 200] {
            let (groups, stats, peak) = group_batched(MemBudget::bytes(budget), &pairs);
            assert_eq!(groups, reference, "budget {budget}");
            assert!(stats.spilled_bytes > 0, "budget {budget} never spilled");
            assert!(peak <= budget, "budget {budget}: peak {peak}");
        }
    }

    #[test]
    fn mixed_type_pairs_group_identically() {
        let pairs = mixed_pairs();
        let reference = group_legacy(&pairs);
        for spec in [
            MemBudget::UNLIMITED,
            MemBudget::bytes(1),
            MemBudget::bytes(128),
            MemBudget::bytes(128).compressed(true),
        ] {
            let (groups, _, _) = group_batched(spec, &pairs);
            assert_eq!(groups, reference, "{spec:?}");
        }
    }

    #[test]
    fn many_runs_trigger_intermediate_merge_passes() {
        let keys: Vec<i64> = (0..100).map(|i| i % 5).collect();
        let pairs = seq_pairs(&keys);
        let reference = group_legacy(&pairs);
        let (groups, stats, _) = group_batched(MemBudget::bytes(1), &pairs);
        assert_eq!(groups, reference);
        assert_eq!(
            stats.spill_files as usize,
            100 + stats.merge_passes as usize
        );
        assert!(
            stats.merge_passes > 0,
            "100 single-pair runs need intermediate merges"
        );
    }

    #[test]
    fn compressed_columnar_runs_group_identically_and_shrink_on_disk() {
        let keys: Vec<i64> = (0..200).map(|i| i % 7).collect();
        let pairs = seq_pairs(&keys);
        let reference = group_legacy(&pairs);
        let (plain_groups, plain_stats, _) = group_batched(MemBudget::bytes(64), &pairs);
        let (packed_groups, packed_stats, peak) =
            group_batched(MemBudget::bytes(64).compressed(true), &pairs);
        assert_eq!(plain_groups, reference);
        assert_eq!(packed_groups, reference);
        assert_eq!(packed_stats.spilled_bytes, plain_stats.spilled_bytes);
        assert!(
            packed_stats.spilled_disk_bytes < plain_stats.spilled_disk_bytes,
            "rle {} should beat raw {}",
            packed_stats.spilled_disk_bytes,
            plain_stats.spilled_disk_bytes
        );
        assert!(peak <= 64);
    }

    #[test]
    fn large_batch_spills_multiple_frames_per_run() {
        // More rows than ROWS_PER_FRAME in one flush: the run must carry
        // several frames and still merge correctly.
        let keys: Vec<i64> = (0..(ROWS_PER_FRAME as i64 * 3)).map(|i| i % 11).collect();
        let pairs = seq_pairs(&keys);
        let reference = group_legacy(&pairs);
        // A share large enough to hold everything, then force one flush by
        // exhausting the budget exactly once via a tiny limit.
        let (groups, stats, _) = group_batched(MemBudget::bytes(40_000), &pairs);
        assert_eq!(groups, reference);
        // Whether it spilled depends on sizes; the equality is the point.
        let _ = stats;
        let (groups, stats, _) = group_batched(MemBudget::bytes(200), &pairs);
        assert_eq!(groups, reference);
        assert!(stats.spilled_bytes > 0);
    }

    #[test]
    fn empty_partition_yields_no_groups() {
        let (groups, stats, peak) = group_batched(MemBudget::bytes(10), &[]);
        assert!(groups.is_empty());
        assert_eq!(stats, SpillStats::default());
        assert_eq!(peak, 0);
    }

    #[test]
    fn partition_view_agrees_with_partition() {
        let mut batch = PairBatch::new();
        let keys: Vec<Tuple> = (0..50)
            .map(|i| {
                if i % 3 == 0 {
                    Tuple::new(vec![Value::str(format!("k{i}")), Value::Int(i)])
                } else {
                    Tuple::from_ints(&[i, i * i])
                }
            })
            .collect();
        for k in &keys {
            batch.push_pair(k, &Message::Assert { cond: 0 });
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(hash_view(batch.key_view(i)), crate::hash::hash_tuple(k));
            for reducers in [1usize, 7, 16] {
                assert_eq!(
                    partition_view(batch.key_view(i), reducers),
                    crate::hash::partition(k, reducers)
                );
            }
        }
    }
}
