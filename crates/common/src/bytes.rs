//! Byte-size arithmetic for the cost model.
//!
//! The paper's cost model (§3.3) works in **MB**; the engine measures
//! **bytes**. [`ByteSize`] keeps the two from being confused and provides
//! the MB view the cost formulas consume.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// One megabyte, in bytes. The paper's constants are per-MB costs.
pub const MB: u64 = 1_000_000;

/// A non-negative byte count with MB conversion helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Construct from megabytes.
    pub fn mb(n: u64) -> Self {
        ByteSize(n * MB)
    }

    /// Raw byte count.
    pub fn as_bytes(self) -> u64 {
        self.0
    }

    /// Fractional megabytes (the unit of the paper's cost constants).
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / MB as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Scale by an integer factor (used by the data-scale knob that maps
    /// laptop-sized runs onto the paper's 100M-tuple regime).
    pub fn scaled(self, factor: u64) -> ByteSize {
        ByteSize(self.0 * factor)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MB {
            write!(f, "{:.2} MB", self.as_mb())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_conversion_roundtrip() {
        assert_eq!(ByteSize::mb(4).as_bytes(), 4_000_000);
        assert!((ByteSize::bytes(2_500_000).as_mb() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::bytes(10) + ByteSize::bytes(5);
        assert_eq!(a, ByteSize::bytes(15));
        assert_eq!(a - ByteSize::bytes(5), ByteSize::bytes(10));
        assert_eq!(a * 2, ByteSize::bytes(30));
        assert_eq!(
            ByteSize::bytes(3).saturating_sub(ByteSize::bytes(5)),
            ByteSize::ZERO
        );
    }

    #[test]
    fn sum_of_iterator() {
        let total: ByteSize = (1..=4).map(ByteSize::bytes).sum();
        assert_eq!(total, ByteSize::bytes(10));
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(ByteSize::bytes(12).to_string(), "12 B");
        assert_eq!(ByteSize::mb(3).to_string(), "3.00 MB");
    }

    #[test]
    fn scaled_multiplies() {
        assert_eq!(ByteSize::bytes(7).scaled(1000), ByteSize::bytes(7000));
    }
}
