//! Databases: finite collections of relations keyed by symbol.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{GumboError, Result};
use crate::relation::{Relation, RelationName};
use crate::tuple::{Fact, Tuple};

/// A database **DB**: a finite set of facts, organized per relation.
///
/// The paper treats a database as a flat set of facts; grouping them per
/// relation symbol is the standard physical organization and is what both
/// the simulated DFS and the MapReduce input format consume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<RelationName, Relation>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add (or replace) a relation.
    pub fn add_relation(&mut self, relation: Relation) {
        self.relations.insert(relation.name().clone(), relation);
    }

    /// Insert a single fact, creating its relation on first sight.
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool> {
        let arity = fact.tuple.arity();
        let rel = self
            .relations
            .entry(fact.relation.clone())
            .or_insert_with(|| Relation::new(fact.relation.clone(), arity));
        rel.insert(fact.tuple)
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &RelationName) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up a relation by name, erroring if absent.
    pub fn relation_or_err(&self, name: &RelationName) -> Result<&Relation> {
        self.relation(name)
            .ok_or_else(|| GumboError::UnknownRelation(name.to_string()))
    }

    /// Convenience lookup by `&str`.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(&RelationName::from(name))
    }

    /// Whether the database holds a relation with this name.
    pub fn contains_relation(&self, name: &RelationName) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove_relation(&mut self, name: &RelationName) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Iterate over relations in deterministic (name-sorted) order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> + '_ {
        self.relations.values()
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &RelationName> + '_ {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of facts across all relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Membership test for a fact.
    pub fn contains_fact(&self, relation: &RelationName, tuple: &Tuple) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(tuple))
    }

    /// Total estimated bytes across all relations.
    pub fn estimated_bytes(&self) -> u64 {
        self.relations.values().map(Relation::estimated_bytes).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database [{} relations, {} facts]",
            self.relation_count(),
            self.fact_count()
        )?;
        for r in self.relations() {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

impl FromIterator<Relation> for Database {
    fn from_iter<I: IntoIterator<Item = Relation>>(iter: I) -> Self {
        let mut db = Database::new();
        for r in iter {
            db.add_relation(r);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(rel: &str, ints: &[i64]) -> Fact {
        Fact::new(rel, Tuple::from_ints(ints))
    }

    #[test]
    fn insert_fact_creates_relation() {
        let mut db = Database::new();
        assert!(db.insert_fact(fact("R", &[1, 2])).unwrap());
        assert!(db.contains_fact(&"R".into(), &Tuple::from_ints(&[1, 2])));
        assert_eq!(db.relation_count(), 1);
    }

    #[test]
    fn insert_fact_checks_arity_after_creation() {
        let mut db = Database::new();
        db.insert_fact(fact("R", &[1, 2])).unwrap();
        assert!(db.insert_fact(fact("R", &[1])).is_err());
    }

    #[test]
    fn unknown_relation_lookup_errors() {
        let db = Database::new();
        assert!(matches!(
            db.relation_or_err(&"Q".into()),
            Err(GumboError::UnknownRelation(_))
        ));
    }

    #[test]
    fn fact_count_sums_relations() {
        let mut db = Database::new();
        db.insert_fact(fact("R", &[1])).unwrap();
        db.insert_fact(fact("R", &[2])).unwrap();
        db.insert_fact(fact("S", &[1])).unwrap();
        assert_eq!(db.fact_count(), 3);
    }

    #[test]
    fn from_iterator_collects_relations() {
        let db: Database = vec![Relation::new("A", 1), Relation::new("B", 2)]
            .into_iter()
            .collect();
        assert_eq!(db.relation_count(), 2);
        assert!(db.get("A").is_some());
    }
}
