//! Columnar tuple batches: the arena-backed data plane.
//!
//! [`Tuple`] is the right *interface* for the paper's operators — an
//! immutable `ā ∈ Dⁿ` — but a poor *carrier* for the MapReduce hot path:
//! every tuple is a separate `Arc<[Value]>` heap block, so a shuffle moving
//! millions of pairs pays an allocation (and later a drop) per tuple.
//! [`TupleBatch`] keeps the same data in columnar form instead:
//!
//! * each of the `n` columns is one contiguous `Vec<i64>` cell arena —
//!   integers are stored verbatim, strings as dictionary codes;
//! * a per-batch [`StringDict`] interns every distinct `Value::Str` once,
//!   so repeated strings cost 4–8 bytes per occurrence, not a clone;
//! * per-column type tags are allocated lazily — a batch of all-integer
//!   tuples (the paper's synthetic workloads, §5.1) carries *no* per-cell
//!   type metadata at all;
//! * [`TupleView`]/[`ValueRef`] give zero-copy access to one row, with the
//!   exact same total order as [`Tuple`]/[`Value`], so sorted runs built
//!   from batches merge identically to runs of owned tuples.
//!
//! Byte accounting is unchanged from the row representation: a batch's
//! [`estimated_bytes`](TupleBatch::estimated_bytes) is the sum over rows of
//! the paper's §5.1 layout — 10 bytes per integer value
//! ([`INT_VALUE_BYTES`]), `max(len, 10)` per string — so cost-model inputs
//! and `JobStats` byte counters are identical whichever representation
//! carried the data.
//!
//! Conversion at the edges is lossless: [`TupleBatch::push_tuple`] /
//! [`TupleBatch::tuple`] round-trip every tuple (order, arity, values, and
//! estimated bytes all preserved), which the property tests in this crate
//! verify over random int/str mixes and dictionary collisions.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{GumboError, Result};
use crate::tuple::Tuple;
use crate::value::{Value, INT_VALUE_BYTES};

/// Per-cell type tag: the cell holds an integer verbatim.
const TAG_INT: u8 = 0;
/// Per-cell type tag: the cell holds a [`StringDict`] code.
const TAG_STR: u8 = 1;

/// A borrowed view of one value inside a batch.
///
/// The derived ordering (`Int` before `Str`, payloads compared within a
/// variant) matches [`Value`]'s derived ordering exactly, so sorting by
/// views produces the same permutation as sorting owned values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueRef<'a> {
    /// An integer value, copied out of the cell arena.
    Int(i64),
    /// A string value, borrowed from the batch's dictionary.
    Str(&'a str),
}

/// One undecoded cell of a [`TupleBatch`]: integers verbatim, strings as
/// dictionary codes (resolve with [`StringDict::get`], or rank them for
/// integer-only sorting). Returned by [`TupleBatch::cell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// An integer cell.
    Int(i64),
    /// A string cell, as its dictionary code.
    Str(u32),
}

impl ValueRef<'_> {
    /// Materialize an owned [`Value`]. Allocates a fresh `Arc<str>` for
    /// strings; prefer [`TupleBatch::tuple`], which clones the dictionary's
    /// existing `Arc` instead.
    pub fn to_value(&self) -> Value {
        match self {
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Str(s) => Value::str(s),
        }
    }

    /// Estimated bytes under the paper's §5.1 layout — identical to
    /// [`Value::estimated_bytes`].
    pub fn estimated_bytes(&self) -> u64 {
        match self {
            ValueRef::Int(_) => INT_VALUE_BYTES,
            ValueRef::Str(s) => (s.len() as u64).max(INT_VALUE_BYTES),
        }
    }

    /// Compare against an owned [`Value`] with the same total order as
    /// `Value`'s own `Ord`.
    pub fn cmp_value(&self, other: &Value) -> Ordering {
        match (self, other) {
            (ValueRef::Int(a), Value::Int(b)) => a.cmp(b),
            (ValueRef::Int(_), Value::Str(_)) => Ordering::Less,
            (ValueRef::Str(_), Value::Int(_)) => Ordering::Greater,
            (ValueRef::Str(a), Value::Str(b)) => (*a).cmp(&**b),
        }
    }
}

/// One column: a contiguous cell arena plus lazily-allocated type tags.
#[derive(Debug, Clone, Default)]
struct Column {
    /// Cell payloads: integers verbatim, string dictionary codes as `i64`.
    cells: Vec<i64>,
    /// Per-cell type tags; `None` while every cell is an integer, so
    /// all-int columns carry no per-cell metadata.
    tags: Option<Vec<u8>>,
}

impl Column {
    fn push_int(&mut self, v: i64) {
        self.cells.push(v);
        if let Some(tags) = &mut self.tags {
            tags.push(TAG_INT);
        }
    }

    fn push_str_code(&mut self, code: u32) {
        self.tags
            .get_or_insert_with(|| vec![TAG_INT; self.cells.len()])
            .push(TAG_STR);
        self.cells.push(i64::from(code));
    }

    fn tag(&self, row: usize) -> u8 {
        self.tags.as_ref().map_or(TAG_INT, |t| t[row])
    }

    fn clear(&mut self) {
        self.cells.clear();
        if let Some(tags) = &mut self.tags {
            tags.clear();
        }
    }
}

/// A per-batch string dictionary: every distinct `Value::Str` is stored
/// once and referenced by a dense `u32` code.
#[derive(Debug, Clone, Default)]
pub struct StringDict {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
    /// Data-pointer fast path: the payload address of an `Arc` this
    /// dictionary itself retains in `strings`, mapped to its code. Only
    /// such addresses are cached — `strings` keeps the allocation alive
    /// for the dictionary's lifetime, so a remembered address can never
    /// be freed and reused for different content. (A pointer from an
    /// equal-content *foreign* `Arc` must not be cached: its allocation
    /// can be dropped and recycled.) Hashing a `usize` is much cheaper
    /// than hashing string bytes, and shuffles re-intern the same shared
    /// `Arc`s constantly — row copies between batches always present the
    /// source dictionary's retained instance.
    by_ptr: HashMap<usize, u32, BuildPtrHasher>,
}

/// A multiply-shift hasher for the pointer fast path: pointers are
/// already well-distributed allocation addresses, so one odd-constant
/// multiply (Fibonacci hashing) beats SipHash by an order of magnitude on
/// this hot loop. Not DoS-resistant — fine, the keys are our own heap
/// addresses, never attacker-controlled input.
#[derive(Default)]
struct PtrHasher(u64);

impl std::hash::Hasher for PtrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only `write_usize` is exercised by `HashMap<usize, _>`; keep a
        // correct (if slow) fallback for completeness.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_usize(&mut self, i: usize) {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type BuildPtrHasher = std::hash::BuildHasherDefault<PtrHasher>;

impl StringDict {
    /// Intern a string, returning its code. Distinct strings get distinct
    /// codes in first-seen order; re-interning is a lookup plus at most an
    /// `Arc` clone — never a string copy.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        let ptr = s.as_ptr() as usize;
        if let Some(&code) = self.by_ptr.get(&ptr) {
            return code;
        }
        if let Some(&code) = self.index.get(s) {
            // Equal content in a foreign allocation: do not cache the
            // pointer — we hold no clone of *this* allocation, so its
            // address may be recycled after the caller drops it.
            return code;
        }
        let code = u32::try_from(self.strings.len()).expect("string dictionary overflow");
        self.strings.push(s.clone());
        self.index.insert(s.clone(), code);
        self.by_ptr.insert(ptr, code);
        code
    }

    /// The interned string for a code.
    ///
    /// # Panics
    /// If the code was not produced by this dictionary.
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    fn clear(&mut self) {
        self.strings.clear();
        self.index.clear();
        self.by_ptr.clear();
    }
}

/// A columnar batch of same-arity tuples.
///
/// See the [module docs](self) for the layout. Batches grow by
/// [`push_tuple`](Self::push_tuple) (decomposing an owned tuple at the
/// edge) or [`push_row`](Self::push_row) (copying a row from another batch
/// without materializing a `Tuple`); rows are read through zero-copy
/// [`TupleView`]s.
#[derive(Debug, Clone, Default)]
pub struct TupleBatch {
    arity: usize,
    rows: usize,
    cols: Vec<Column>,
    dict: StringDict,
    bytes: u64,
}

impl TupleBatch {
    /// An empty batch of `arity`-ary tuples.
    pub fn new(arity: usize) -> Self {
        TupleBatch {
            arity,
            rows: 0,
            cols: (0..arity).map(|_| Column::default()).collect(),
            dict: StringDict::default(),
            bytes: 0,
        }
    }

    /// The arity every row of this batch has.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Estimated bytes over all rows, under the paper's §5.1 layout —
    /// equal to the sum of `Tuple::estimated_bytes` over the same rows.
    pub fn estimated_bytes(&self) -> u64 {
        self.bytes
    }

    /// The batch's string dictionary.
    pub fn dict(&self) -> &StringDict {
        &self.dict
    }

    /// Append one owned tuple (the row-to-column edge conversion).
    ///
    /// # Panics
    /// If the tuple's arity differs from the batch's.
    pub fn push_tuple(&mut self, t: &Tuple) {
        assert_eq!(t.arity(), self.arity, "batch arity mismatch");
        for (col, v) in self.cols.iter_mut().zip(t.values()) {
            match v {
                Value::Int(i) => col.push_int(*i),
                Value::Str(s) => {
                    let code = self.dict.intern(s);
                    col.push_str_code(code);
                }
            }
            self.bytes += v.estimated_bytes();
        }
        self.rows += 1;
    }

    /// Append row `row` of `src` (which may be `self`-shaped but a
    /// different batch). Integers are plain `i64` copies; strings re-intern
    /// the source dictionary's `Arc` (a pointer clone, never a byte copy).
    ///
    /// # Panics
    /// If the arities differ or `row` is out of bounds.
    pub fn push_row(&mut self, src: &TupleBatch, row: usize) {
        assert_eq!(src.arity, self.arity, "batch arity mismatch");
        assert!(row < src.rows, "row out of bounds");
        for c in 0..self.arity {
            let cell = src.cols[c].cells[row];
            if src.cols[c].tag(row) == TAG_INT {
                self.cols[c].push_int(cell);
                self.bytes += INT_VALUE_BYTES;
            } else {
                let s = src.dict.get(cell as u32);
                self.bytes += (s.len() as u64).max(INT_VALUE_BYTES);
                let code = self.dict.intern(s);
                self.cols[c].push_str_code(code);
            }
        }
        self.rows += 1;
    }

    /// Zero-copy view of one row.
    ///
    /// # Panics
    /// If `row` is out of bounds.
    pub fn view(&self, row: usize) -> TupleView<'_> {
        assert!(row < self.rows, "row out of bounds");
        TupleView { batch: self, row }
    }

    /// Raw cell access: the undecoded `(tag, payload)` of one cell, with
    /// string cells left as dictionary codes. This is the hook for
    /// rank-based sorting — resolve codes through a precomputed rank
    /// table and row comparisons become pure integer comparisons.
    ///
    /// # Panics
    /// If `row` or `col` is out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> Cell {
        assert!(row < self.rows, "row out of bounds");
        let cell = self.cols[col].cells[row];
        if self.cols[col].tag(row) == TAG_INT {
            Cell::Int(cell)
        } else {
            Cell::Str(cell as u32)
        }
    }

    /// Materialize row `row` as an owned [`Tuple`]. String fields clone the
    /// dictionary's `Arc<str>` (a refcount bump, not a copy); the whole
    /// tuple is a single `Arc<[Value]>` allocation.
    pub fn tuple(&self, row: usize) -> Tuple {
        assert!(row < self.rows, "row out of bounds");
        (0..self.arity)
            .map(|c| {
                let cell = self.cols[c].cells[row];
                if self.cols[c].tag(row) == TAG_INT {
                    Value::Int(cell)
                } else {
                    Value::Str(self.dict.get(cell as u32).clone())
                }
            })
            .collect()
    }

    /// Estimated bytes of one row (paper layout), equal to
    /// `self.tuple(row).estimated_bytes()` without materializing.
    pub fn row_bytes(&self, row: usize) -> u64 {
        (0..self.arity)
            .map(|c| {
                let cell = self.cols[c].cells[row];
                if self.cols[c].tag(row) == TAG_INT {
                    INT_VALUE_BYTES
                } else {
                    (self.dict.get(cell as u32).len() as u64).max(INT_VALUE_BYTES)
                }
            })
            .sum()
    }

    /// Materialize every row (edge conversion back to the row world).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows).map(|r| self.tuple(r)).collect()
    }

    /// Project every row onto `positions` — pure column slicing: selected
    /// cell arenas (and their tag vectors) are copied wholesale with
    /// `memcpy`, no per-row or per-value work. The dictionary is cloned
    /// only when a selected column actually holds strings.
    ///
    /// Row `i` of the result equals `self.tuple(i).project(positions)`.
    pub fn project(&self, positions: &[usize]) -> TupleBatch {
        let cols: Vec<Column> = positions.iter().map(|&i| self.cols[i].clone()).collect();
        let any_str = cols.iter().any(|c| c.tags.is_some());
        let mut out = TupleBatch {
            arity: positions.len(),
            rows: self.rows,
            cols,
            dict: if any_str {
                self.dict.clone()
            } else {
                StringDict::default()
            },
            bytes: 0,
        };
        out.bytes = (0..out.rows).map(|r| out.row_bytes(r)).sum();
        out
    }

    /// Drop every row but keep the cell arenas' capacity for reuse.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.dict.clear();
        self.rows = 0;
        self.bytes = 0;
    }

    /// Append the batch's wire encoding to `out`.
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// [arity u32] [rows u32]
    /// [dict_len u32] dict_len × ( [len u32] [utf-8 bytes] )
    /// arity × ( [has_tags u8] rows × [cell i64] { rows × [tag u8] if has_tags } )
    /// ```
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<()> {
        let rows = u32::try_from(self.rows)
            .map_err(|_| GumboError::Storage("columnar frame exceeds 2^32 rows".into()))?;
        out.extend_from_slice(&(self.arity as u32).to_le_bytes());
        out.extend_from_slice(&rows.to_le_bytes());
        out.extend_from_slice(&(self.dict.len() as u32).to_le_bytes());
        for s in &self.dict.strings {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        for col in &self.cols {
            out.push(u8::from(col.tags.is_some()));
            for cell in &col.cells {
                out.extend_from_slice(&cell.to_le_bytes());
            }
            if let Some(tags) = &col.tags {
                out.extend_from_slice(tags);
            }
        }
        Ok(())
    }

    /// Decode one batch starting at `*pos` in `buf`, advancing `*pos` past
    /// it. Rejects corrupt input (truncation, bad tags, out-of-range
    /// dictionary codes, non-UTF-8 strings) instead of guessing.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<TupleBatch> {
        let arity = read_u32(buf, pos)? as usize;
        let rows = read_u32(buf, pos)? as usize;
        let dict_len = read_u32(buf, pos)? as usize;
        let mut dict = StringDict::default();
        for _ in 0..dict_len {
            let len = read_u32(buf, pos)? as usize;
            let bytes = read_bytes(buf, pos, len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| {
                GumboError::Storage("corrupt columnar frame: non-UTF-8 dictionary entry".into())
            })?;
            let arc: Arc<str> = Arc::from(s);
            // Codes are positional; re-interning preserves them because the
            // writer emitted strings in code order and they are distinct.
            dict.intern(&arc);
        }
        let mut cols = Vec::with_capacity(arity);
        let mut bytes_total = 0u64;
        for _ in 0..arity {
            let has_tags = match read_u8(buf, pos)? {
                0 => false,
                1 => true,
                other => {
                    return Err(GumboError::Storage(format!(
                        "corrupt columnar frame: bad column header {other}"
                    )))
                }
            };
            let mut cells = Vec::with_capacity(rows);
            for _ in 0..rows {
                cells.push(read_i64(buf, pos)?);
            }
            let tags = if has_tags {
                let raw = read_bytes(buf, pos, rows)?;
                for (tag, cell) in raw.iter().zip(&cells) {
                    match *tag {
                        TAG_INT => {}
                        TAG_STR => {
                            if *cell < 0 || *cell as usize >= dict.len() {
                                return Err(GumboError::Storage(
                                    "corrupt columnar frame: string code out of range".into(),
                                ));
                            }
                        }
                        other => {
                            return Err(GumboError::Storage(format!(
                                "corrupt columnar frame: unknown cell tag {other}"
                            )))
                        }
                    }
                }
                Some(raw.to_vec())
            } else {
                None
            };
            for row in 0..rows {
                bytes_total += match tags.as_ref().map_or(TAG_INT, |t| t[row]) {
                    TAG_INT => INT_VALUE_BYTES,
                    _ => (dict.get(cells[row] as u32).len() as u64).max(INT_VALUE_BYTES),
                };
            }
            cols.push(Column { cells, tags });
        }
        Ok(TupleBatch {
            arity,
            rows,
            cols,
            dict,
            bytes: bytes_total,
        })
    }
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| GumboError::Storage("truncated columnar frame".into()))?;
    *pos += 1;
    Ok(b)
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let bytes = read_bytes(buf, pos, 4)?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64> {
    let bytes = read_bytes(buf, pos, 8)?;
    Ok(i64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| GumboError::Storage("truncated columnar frame".into()))?;
    let out = &buf[*pos..end];
    *pos = end;
    Ok(out)
}

/// A zero-copy view of one row of a [`TupleBatch`].
///
/// Views are `Copy` (a batch pointer plus a row index) and totally ordered
/// with exactly [`Tuple`]'s derived order — element-wise [`Value`]
/// comparison with shorter-tuple tiebreak — including across *different*
/// batches (string cells compare by content, not by dictionary code).
#[derive(Clone, Copy)]
pub struct TupleView<'a> {
    batch: &'a TupleBatch,
    row: usize,
}

impl<'a> TupleView<'a> {
    /// The row's arity.
    pub fn arity(&self) -> usize {
        self.batch.arity
    }

    /// The value at position `i`.
    ///
    /// # Panics
    /// If `i >= arity`.
    pub fn value(&self, i: usize) -> ValueRef<'a> {
        let col = &self.batch.cols[i];
        let cell = col.cells[self.row];
        if col.tag(self.row) == TAG_INT {
            ValueRef::Int(cell)
        } else {
            ValueRef::Str(self.batch.dict.get(cell as u32))
        }
    }

    /// Iterate the row's values left to right.
    pub fn values(&self) -> impl Iterator<Item = ValueRef<'a>> + '_ {
        (0..self.batch.arity).map(|i| self.value(i))
    }

    /// Materialize the row as an owned [`Tuple`] (one allocation; string
    /// fields bump the dictionary `Arc`s).
    pub fn to_tuple(&self) -> Tuple {
        self.batch.tuple(self.row)
    }

    /// Estimated bytes of the row under the paper's layout.
    pub fn estimated_bytes(&self) -> u64 {
        self.batch.row_bytes(self.row)
    }

    /// Compare against an owned [`Tuple`] with the same total order as
    /// `Tuple`'s `Ord`.
    pub fn cmp_tuple(&self, t: &Tuple) -> Ordering {
        let mut vals = t.values().iter();
        for i in 0..self.batch.arity {
            match vals.next() {
                None => return Ordering::Greater,
                Some(v) => match self.value(i).cmp_value(v) {
                    Ordering::Equal => {}
                    non_eq => return non_eq,
                },
            }
        }
        if vals.next().is_some() {
            Ordering::Less
        } else {
            Ordering::Equal
        }
    }
}

impl PartialEq for TupleView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for TupleView<'_> {}

impl PartialOrd for TupleView<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TupleView<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic with length tiebreak: identical to the derived
        // `Ord` on `Tuple`'s `Arc<[Value]>`.
        self.values().cmp(other.values())
    }
}

impl fmt::Debug for TupleView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_tuples() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(3), Value::str("carrier"), Value::Int(-1)]),
            Tuple::new(vec![Value::Int(1), Value::str("bad"), Value::Int(7)]),
            Tuple::new(vec![Value::Int(3), Value::str("bad"), Value::Int(9)]),
            Tuple::new(vec![
                Value::str("bad"),
                Value::str("bad"),
                Value::Int(i64::MIN),
            ]),
        ]
    }

    #[test]
    fn push_and_materialize_round_trip() {
        let tuples = mixed_tuples();
        let mut batch = TupleBatch::new(3);
        for t in &tuples {
            batch.push_tuple(t);
        }
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.to_tuples(), tuples);
        assert_eq!(
            batch.estimated_bytes(),
            tuples.iter().map(Tuple::estimated_bytes).sum::<u64>()
        );
        for (i, t) in tuples.iter().enumerate() {
            assert_eq!(batch.row_bytes(i), t.estimated_bytes());
            assert_eq!(batch.view(i).cmp_tuple(t), Ordering::Equal);
        }
    }

    #[test]
    fn dictionary_interns_each_distinct_string_once() {
        let mut batch = TupleBatch::new(1);
        for s in ["x", "y", "x", "x", "y"] {
            batch.push_tuple(&Tuple::new(vec![Value::str(s)]));
        }
        assert_eq!(batch.dict().len(), 2);
        assert_eq!(
            batch.to_tuples(),
            ["x", "y", "x", "x", "y"]
                .iter()
                .map(|s| Tuple::new(vec![Value::str(s)]))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_int_batches_carry_no_tags() {
        let mut batch = TupleBatch::new(2);
        for i in 0..100 {
            batch.push_tuple(&Tuple::from_ints(&[i, i * 2]));
        }
        assert!(batch.cols.iter().all(|c| c.tags.is_none()));
        assert!(batch.dict().is_empty());
        assert_eq!(batch.estimated_bytes(), 100 * 2 * INT_VALUE_BYTES);
    }

    #[test]
    fn view_order_matches_tuple_order() {
        let tuples = mixed_tuples();
        let mut batch = TupleBatch::new(3);
        for t in &tuples {
            batch.push_tuple(t);
        }
        let mut by_view: Vec<usize> = (0..tuples.len()).collect();
        by_view.sort_by(|&a, &b| batch.view(a).cmp(&batch.view(b)));
        let mut by_tuple: Vec<usize> = (0..tuples.len()).collect();
        by_tuple.sort_by(|&a, &b| tuples[a].cmp(&tuples[b]));
        assert_eq!(by_view, by_tuple);
    }

    #[test]
    fn views_compare_across_batches_by_content() {
        let mut a = TupleBatch::new(1);
        let mut b = TupleBatch::new(1);
        // Same string, different dictionary codes (b interned "z" first).
        a.push_tuple(&Tuple::new(vec![Value::str("same")]));
        b.push_tuple(&Tuple::new(vec![Value::str("z")]));
        b.push_tuple(&Tuple::new(vec![Value::str("same")]));
        assert_eq!(a.view(0), b.view(1));
        assert!(a.view(0) < b.view(0));
    }

    #[test]
    fn push_row_copies_between_batches() {
        let tuples = mixed_tuples();
        let mut src = TupleBatch::new(3);
        for t in &tuples {
            src.push_tuple(t);
        }
        let mut dst = TupleBatch::new(3);
        for row in [3, 1, 1, 0] {
            dst.push_row(&src, row);
        }
        assert_eq!(
            dst.to_tuples(),
            vec![
                tuples[3].clone(),
                tuples[1].clone(),
                tuples[1].clone(),
                tuples[0].clone()
            ]
        );
        assert_eq!(
            dst.estimated_bytes(),
            [3usize, 1, 1, 0]
                .iter()
                .map(|&i| tuples[i].estimated_bytes())
                .sum::<u64>()
        );
    }

    #[test]
    fn projection_is_column_slicing() {
        let tuples = mixed_tuples();
        let mut batch = TupleBatch::new(3);
        for t in &tuples {
            batch.push_tuple(t);
        }
        let proj = batch.project(&[2, 0]);
        assert_eq!(proj.arity(), 2);
        assert_eq!(
            proj.to_tuples(),
            tuples
                .iter()
                .map(|t| t.project(&[2, 0]))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            proj.estimated_bytes(),
            tuples
                .iter()
                .map(|t| t.project(&[2, 0]).estimated_bytes())
                .sum::<u64>()
        );
    }

    #[test]
    fn int_only_projection_of_int_batch_has_no_dict() {
        let mut batch = TupleBatch::new(3);
        for i in 0..10 {
            batch.push_tuple(&Tuple::from_ints(&[i, i + 1, i + 2]));
        }
        let proj = batch.project(&[0, 2]);
        assert!(proj.dict().is_empty());
        assert!(proj.cols.iter().all(|c| c.tags.is_none()));
        assert_eq!(
            proj.to_tuples(),
            (0..10)
                .map(|i| Tuple::from_ints(&[i, i + 2]))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn nullary_batches_count_rows() {
        let mut batch = TupleBatch::new(0);
        let unit = Tuple::new(vec![]);
        batch.push_tuple(&unit);
        batch.push_tuple(&unit);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.estimated_bytes(), 0);
        assert_eq!(batch.to_tuples(), vec![unit.clone(), unit]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let tuples = mixed_tuples();
        let mut batch = TupleBatch::new(3);
        for t in &tuples {
            batch.push_tuple(t);
        }
        let mut buf = Vec::new();
        batch.encode_into(&mut buf).unwrap();
        let mut pos = 0;
        let back = TupleBatch::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back.to_tuples(), tuples);
        assert_eq!(back.estimated_bytes(), batch.estimated_bytes());
    }

    #[test]
    fn decode_rejects_truncation_and_bad_codes() {
        let mut batch = TupleBatch::new(1);
        batch.push_tuple(&Tuple::new(vec![Value::str("q")]));
        let mut buf = Vec::new();
        batch.encode_into(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                TupleBatch::decode_from(&buf[..cut], &mut pos).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Corrupt the string code (last 8 cell bytes before the tag byte).
        let mut bad = buf.clone();
        let cell_at = bad.len() - 1 - 8;
        bad[cell_at..cell_at + 8].copy_from_slice(&99i64.to_le_bytes());
        let mut pos = 0;
        let err = TupleBatch::decode_from(&bad, &mut pos).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn clear_retains_capacity_and_resets_accounting() {
        let mut batch = TupleBatch::new(2);
        batch.push_tuple(&Tuple::new(vec![Value::Int(1), Value::str("s")]));
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.estimated_bytes(), 0);
        assert!(batch.dict().is_empty());
        batch.push_tuple(&Tuple::from_ints(&[4, 5]));
        assert_eq!(batch.to_tuples(), vec![Tuple::from_ints(&[4, 5])]);
    }
}
