//! Tab-separated I/O for relations: the on-disk interchange format of the
//! command-line tool.
//!
//! A relation file is one tuple per line, fields separated by tabs. Fields
//! parse as integers when possible and as strings otherwise; arity is
//! inferred from the first line and enforced afterwards.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::error::{GumboError, Result};
use crate::relation::{Relation, RelationName};
use crate::tuple::Tuple;
use crate::value::Value;

/// Parse one field: integer if it lexes as one, string otherwise.
fn parse_field(field: &str) -> Value {
    match field.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::str(field),
    }
}

/// Render one value in TSV form (strings unquoted; tabs are not allowed).
fn render_field(value: &Value) -> Result<String> {
    Ok(match value {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            if s.contains('\t') || s.contains('\n') {
                return Err(GumboError::Storage(
                    "string values with tabs/newlines cannot be written as TSV".into(),
                ));
            }
            s.to_string()
        }
    })
}

/// Parse a relation from TSV text.
pub fn parse_tsv(name: impl Into<RelationName>, text: &str) -> Result<Relation> {
    let name = name.into();
    let mut lines = text.lines().filter(|l| !l.trim().is_empty()).peekable();
    let arity = match lines.peek() {
        Some(first) => first.split('\t').count(),
        None => {
            return Err(GumboError::Storage(format!(
                "cannot infer arity of empty relation file for {name}"
            )))
        }
    };
    let mut rel = Relation::new(name, arity);
    for line in lines {
        let values: Vec<Value> = line.split('\t').map(parse_field).collect();
        rel.insert(Tuple::new(values))?;
    }
    Ok(rel)
}

/// Render a relation as TSV text (deterministic, sorted tuple order).
pub fn to_tsv(relation: &Relation) -> Result<String> {
    let mut out = String::new();
    for tuple in relation.iter() {
        let fields: Result<Vec<String>> = tuple.values().iter().map(render_field).collect();
        out.push_str(&fields?.join("\t"));
        out.push('\n');
    }
    Ok(out)
}

/// Read a relation from a `.tsv` file; the relation is named after the
/// file stem.
pub fn read_tsv_file(path: &Path) -> Result<Relation> {
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| GumboError::Storage(format!("bad relation file name: {path:?}")))?;
    let text = fs::read_to_string(path)
        .map_err(|e| GumboError::Storage(format!("reading {path:?}: {e}")))?;
    parse_tsv(name, &text)
}

/// Write a relation to a `.tsv` file.
pub fn write_tsv_file(relation: &Relation, path: &Path) -> Result<()> {
    let text = to_tsv(relation)?;
    let mut file = fs::File::create(path)
        .map_err(|e| GumboError::Storage(format!("creating {path:?}: {e}")))?;
    file.write_all(text.as_bytes())
        .map_err(|e| GumboError::Storage(format!("writing {path:?}: {e}")))
}

/// Load every `*.tsv` file of a directory as a relation (named after the
/// file stem), returning them sorted by name.
pub fn read_tsv_dir(dir: &Path) -> Result<Vec<Relation>> {
    let entries = fs::read_dir(dir)
        .map_err(|e| GumboError::Storage(format!("reading directory {dir:?}: {e}")))?;
    let mut relations = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| GumboError::Storage(format!("listing {dir:?}: {e}")))?
            .path();
        if path.extension().and_then(|e| e.to_str()) == Some("tsv") {
            relations.push(read_tsv_file(&path)?);
        }
    }
    relations.sort_by(|a, b| a.name().cmp(b.name()));
    Ok(relations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_infers_types_and_arity() {
        let rel = parse_tsv("R", "1\t2\n3\tbad\n").unwrap();
        assert_eq!(rel.arity(), 2);
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&Tuple::new(vec![Value::Int(3), Value::str("bad")])));
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(parse_tsv("R", "1\t2\n3\n").is_err());
    }

    #[test]
    fn empty_file_rejected() {
        assert!(parse_tsv("R", "\n\n").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let rel = parse_tsv("R", "\n1\t2\n\n3\t4\n\n").unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn roundtrip_through_tsv() {
        let rel = parse_tsv("R", "2\tbeta\n1\talpha\n").unwrap();
        let text = to_tsv(&rel).unwrap();
        // Sorted output: 1 before 2.
        assert_eq!(text, "1\talpha\n2\tbeta\n");
        let back = parse_tsv("R", &text).unwrap();
        assert_eq!(rel, back);
    }

    #[test]
    fn tabs_in_strings_refused_on_write() {
        let mut rel = Relation::new("R", 1);
        rel.insert(Tuple::new(vec![Value::str("a\tb")])).unwrap();
        assert!(to_tsv(&rel).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gumbo-io-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let rel = parse_tsv("Events", "1\t100\n2\t200\n").unwrap();
        let path = dir.join("Events.tsv");
        write_tsv_file(&rel, &path).unwrap();
        let back = read_tsv_file(&path).unwrap();
        assert_eq!(back.name().as_str(), "Events");
        assert_eq!(back, rel.renamed("Events"));

        let all = read_tsv_dir(&dir).unwrap();
        assert_eq!(all.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
