//! Error types shared across the gumbo crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = GumboError> = std::result::Result<T, E>;

/// Errors produced by the data model, query language and engine layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GumboError {
    /// A tuple's arity did not match its relation's declared arity.
    ArityMismatch {
        /// Relation whose schema was violated.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A relation symbol was referenced but not present in the database/DFS.
    UnknownRelation(String),
    /// A query failed guardedness or scoping validation.
    InvalidQuery(String),
    /// The SQL-like query text could not be parsed.
    Parse {
        /// Human-readable description of the failure.
        message: String,
        /// Byte offset in the input where the failure was detected.
        offset: usize,
    },
    /// An SGF program's dependency graph contains a cycle.
    CyclicDependency(String),
    /// A MapReduce job or plan was internally inconsistent.
    Plan(String),
    /// Simulated storage failure (e.g. writing over an existing file).
    Storage(String),
}

impl fmt::Display for GumboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GumboError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation {relation}: expected {expected}, got {got}"
            ),
            GumboError::UnknownRelation(name) => write!(f, "unknown relation: {name}"),
            GumboError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            GumboError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            GumboError::CyclicDependency(msg) => write!(f, "cyclic dependency: {msg}"),
            GumboError::Plan(msg) => write!(f, "plan error: {msg}"),
            GumboError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for GumboError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GumboError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            got: 3,
        };
        assert_eq!(
            e.to_string(),
            "arity mismatch for relation R: expected 2, got 3"
        );
        let e = GumboError::Parse {
            message: "expected FROM".into(),
            offset: 17,
        };
        assert!(e.to_string().contains("byte 17"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GumboError::UnknownRelation("R".into()));
    }
}
