//! # gumbo-common
//!
//! Core data model for the Gumbo multi-semi-join engine: [`Value`]s,
//! [`Tuple`]s, [`Fact`]s, [`Relation`]s and [`Database`]s, together with the
//! byte-size accounting used throughout the MapReduce cost model of the
//! paper *Parallel Evaluation of Multi-Semi-Joins* (Daenen et al., 2016).
//!
//! The paper fixes an infinite domain **D** of data values and a collection
//! **S** of relation symbols, each with an arity; a *fact* `R(ā)` pairs a
//! relation symbol with a conforming tuple, and a *database* is a finite set
//! of facts (§3.1). This crate is a direct, strongly-typed rendering of
//! those definitions.
//!
//! Byte sizes follow the paper's experimental setup (§5.1): guard relations
//! of 100M 4-ary tuples occupy 4 GB and unary conditional relations of 100M
//! tuples occupy 1 GB, i.e. **10 bytes per value**. [`Value::estimated_bytes`]
//! encodes exactly that convention so that cost-model inputs measured on
//! scaled-down data have the same per-tuple weights as the paper's.

pub mod batch;
pub mod bytes;
pub mod database;
pub mod error;
pub mod io;
pub mod relation;
pub mod tuple;
pub mod value;

pub use batch::{Cell, StringDict, TupleBatch, TupleView, ValueRef};
pub use bytes::{ByteSize, MB};
pub use database::Database;
pub use error::{GumboError, Result};
pub use relation::{Relation, RelationName};
pub use tuple::{Fact, Tuple};
pub use value::Value;

#[cfg(test)]
mod proptests;
