//! Tuples and facts.
//!
//! A *tuple* `ā ∈ Dⁿ` is a sequence of data values; a *fact* `R(ā)` tags a
//! tuple with a relation symbol (§3.1 of the paper).

use std::fmt;
use std::sync::Arc;

use crate::relation::RelationName;
use crate::value::Value;

/// An immutable tuple of data values.
///
/// Tuples are cheap to clone (`Arc`-backed) because the MapReduce shuffle
/// moves them between simulated tasks many times.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Create a tuple of integer values.
    pub fn from_ints(ints: &[i64]) -> Self {
        Tuple::new(ints.iter().copied().map(Value::Int).collect())
    }

    /// The arity (number of fields) of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values of the tuple.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Field access by position.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Project the tuple onto the given positions.
    ///
    /// This is the mechanical core of the paper's `π_{α;x̄}(f)` operation:
    /// position resolution (variables → coordinates) happens at the atom
    /// level (in `gumbo-sgf`); here we just pick coordinates.
    ///
    /// The projection collects straight into the `Arc<[Value]>` — one
    /// allocation total, and plain `i64` copies (no `Arc` refcount
    /// traffic) for every integer field.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        positions.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Estimated storage footprint in bytes (sum over the fields).
    pub fn estimated_bytes(&self) -> u64 {
        self.values.iter().map(Value::estimated_bytes).sum()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    /// Collects directly into the backing `Arc<[Value]>`: for
    /// exactly-sized iterators this is a single allocation, with no
    /// intermediate `Vec`.
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple {
            values: iter.into_iter().collect(),
        }
    }
}

/// A fact `R(ā)`: a tuple tagged with its relation symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The relation symbol `R`.
    pub relation: RelationName,
    /// The tuple `ā`.
    pub tuple: Tuple,
}

impl Fact {
    /// Create a fact.
    pub fn new(relation: impl Into<RelationName>, tuple: Tuple) -> Self {
        Fact {
            relation: relation.into(),
            tuple,
        }
    }

    /// Estimated storage footprint in bytes (the tuple only; the relation tag
    /// is schema information, not data).
    pub fn estimated_bytes(&self) -> u64 {
        self.tuple.estimated_bytes()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.relation, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_picks_coordinates() {
        // π over R(1,2,1,3) onto coordinates [0,3] = (1,3), cf. §4 notation.
        let t = Tuple::from_ints(&[1, 2, 1, 3]);
        assert_eq!(t.project(&[0, 3]), Tuple::from_ints(&[1, 3]));
    }

    #[test]
    fn projection_can_duplicate_and_reorder() {
        let t = Tuple::from_ints(&[10, 20]);
        assert_eq!(t.project(&[1, 0, 1]), Tuple::from_ints(&[20, 10, 20]));
    }

    #[test]
    fn empty_projection_gives_nullary_tuple() {
        let t = Tuple::from_ints(&[1, 2]);
        let p = t.project(&[]);
        assert_eq!(p.arity(), 0);
        assert_eq!(p.estimated_bytes(), 0);
    }

    #[test]
    fn tuple_bytes_sum_fields() {
        assert_eq!(Tuple::from_ints(&[1, 2, 3, 4]).estimated_bytes(), 40);
    }

    #[test]
    fn fact_display() {
        let f = Fact::new("R", Tuple::from_ints(&[1, 2]));
        assert_eq!(f.to_string(), "R(1, 2)");
    }

    #[test]
    fn int_projection_performs_no_arc_bumps() {
        // Projecting away a string field must not touch its refcount: the
        // int path of `project` copies plain i64s, and only the selected
        // fields are cloned at all.
        let s: Arc<str> = Arc::from("shared");
        let t = Tuple::new(vec![
            Value::Int(1),
            Value::Str(s.clone()),
            Value::Int(2),
            Value::Int(3),
        ]);
        let before = Arc::strong_count(&s);
        let p = t.project(&[0, 2, 3]);
        assert_eq!(
            Arc::strong_count(&s),
            before,
            "all-int projection bumped a string Arc"
        );
        assert_eq!(p, Tuple::from_ints(&[1, 2, 3]));
        // Selecting the string field bumps it exactly once.
        let q = t.project(&[1]);
        assert_eq!(Arc::strong_count(&s), before + 1);
        drop(q);
        assert_eq!(Arc::strong_count(&s), before);
    }

    #[test]
    fn tuples_with_equal_values_are_equal() {
        assert_eq!(
            Tuple::from_ints(&[1, 2]),
            Tuple::new(vec![1i64.into(), 2i64.into()])
        );
    }
}
