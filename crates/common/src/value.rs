//! Data values: the domain **D** of the paper.
//!
//! The paper's experiments use synthetic integer data, but example queries
//! (e.g. the book-retailer query of Example 2) mention string constants such
//! as `"bad"`. [`Value`] therefore supports both integers and interned
//! strings.

use std::fmt;
use std::sync::Arc;

/// Estimated storage footprint of a single integer value, in bytes.
///
/// Derived from the paper's setup (§5.1): 100M 4-ary tuples = 4 GB and 100M
/// unary tuples = 1 GB both give 10 bytes/value. Keeping this constant makes
/// cost-model inputs from scaled-down runs directly comparable to the
/// paper's MB figures after multiplying by the scale factor.
pub const INT_VALUE_BYTES: u64 = 10;

/// A single data value from the domain **D**.
///
/// Values are totally ordered and hashable so they can serve as MapReduce
/// keys and as elements of sorted runs in the shuffle simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer data value (the only kind the synthetic workloads generate).
    Int(i64),
    /// A string data value (used by constants in example queries).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Estimated on-disk footprint in bytes, per the paper's data layout.
    pub fn estimated_bytes(&self) -> u64 {
        match self {
            Value::Int(_) => INT_VALUE_BYTES,
            Value::Str(s) => (s.len() as u64).max(INT_VALUE_BYTES),
        }
    }

    /// Return the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Return the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::from(42i64);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn str_roundtrip() {
        let v = Value::str("bad");
        assert_eq!(v.as_str(), Some("bad"));
        assert_eq!(v.as_int(), None);
        assert_eq!(v.to_string(), "\"bad\"");
    }

    #[test]
    fn estimated_bytes_matches_paper_layout() {
        // 4-ary tuple of ints = 40 bytes, i.e. 100M tuples = 4 GB.
        assert_eq!(Value::Int(7).estimated_bytes(), 10);
        // Strings are at least as large as an int value.
        assert_eq!(Value::str("x").estimated_bytes(), 10);
        assert_eq!(Value::str("a-very-long-string").estimated_bytes(), 18);
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(2),
            Value::Int(1),
            Value::str("a"),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn equality_distinguishes_variants() {
        assert_ne!(Value::Int(1), Value::str("1"));
    }
}
