//! Relations: named, fixed-arity sets of tuples.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::{GumboError, Result};
use crate::tuple::Tuple;

/// An interned relation symbol.
///
/// Relation names are compared frequently (every map-function conformance
/// check consults them), so they are `Arc<str>`-interned for cheap clones.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationName(Arc<str>);

impl RelationName {
    /// View the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for RelationName {
    fn from(s: &str) -> Self {
        RelationName(Arc::from(s))
    }
}

impl From<String> for RelationName {
    fn from(s: String) -> Self {
        RelationName(Arc::from(s.as_str()))
    }
}

impl From<&RelationName> for RelationName {
    fn from(s: &RelationName) -> Self {
        s.clone()
    }
}

impl fmt::Display for RelationName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A relation instance: a set of tuples of uniform arity.
///
/// Tuples are kept in a sorted set so that iteration order — and therefore
/// every byte count, sample and simulated schedule derived from it — is
/// deterministic across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: RelationName,
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Create an empty relation with the given name and arity.
    pub fn new(name: impl Into<RelationName>, arity: usize) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Create a relation from tuples, validating arities.
    pub fn from_tuples(
        name: impl Into<RelationName>,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut rel = Relation::new(name, arity);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation symbol.
    pub fn name(&self) -> &RelationName {
        &self.name
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; rejects arity mismatches. Returns whether the tuple
    /// was newly inserted (relations are sets).
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.arity {
            return Err(GumboError::ArityMismatch {
                relation: self.name.to_string(),
                expected: self.arity,
                got: tuple.arity(),
            });
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over the tuples in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Estimated storage footprint in bytes.
    pub fn estimated_bytes(&self) -> u64 {
        self.tuples.iter().map(Tuple::estimated_bytes).sum()
    }

    /// Rename the relation (used when storing semi-join outputs `Xᵢ`).
    pub fn renamed(&self, name: impl Into<RelationName>) -> Relation {
        Relation {
            name: name.into(),
            arity: self.arity,
            tuples: self.tuples.clone(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} [{} tuples]",
            self.name,
            self.arity,
            self.tuples.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new("R", 2);
        let err = r.insert(Tuple::from_ints(&[1])).unwrap_err();
        assert!(matches!(
            err,
            GumboError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn relations_are_sets() {
        let mut r = Relation::new("R", 1);
        assert!(r.insert(Tuple::from_ints(&[1])).unwrap());
        assert!(!r.insert(Tuple::from_ints(&[1])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let r = Relation::from_tuples("R", 1, [3, 1, 2].iter().map(|&i| Tuple::from_ints(&[i])))
            .unwrap();
        let order: Vec<i64> = r
            .iter()
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn bytes_accumulate() {
        let r =
            Relation::from_tuples("R", 4, (0..5).map(|i| Tuple::from_ints(&[i, i, i, i]))).unwrap();
        assert_eq!(r.estimated_bytes(), 5 * 40);
    }

    #[test]
    fn renamed_preserves_contents() {
        let mut r = Relation::new("R", 1);
        r.insert(Tuple::from_ints(&[9])).unwrap();
        let s = r.renamed("X1");
        assert_eq!(s.name().as_str(), "X1");
        assert!(s.contains(&Tuple::from_ints(&[9])));
    }
}
