//! Property-based tests for the data-model laws the engine relies on.

#![cfg(test)]

use proptest::prelude::*;

use crate::{ByteSize, Database, Fact, Relation, Tuple, TupleBatch, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,12}".prop_map(Value::str),
    ]
}

fn arb_tuple(max_arity: usize) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 0..=max_arity).prop_map(Tuple::new)
}

/// A value from a deliberately tiny string alphabet, so generated
/// batches hit dictionary collisions (the same string interned from
/// many rows) as well as int/str mixes within one column.
fn arb_colliding_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3i64..3).prop_map(Value::Int),
        "[ab]{0,2}".prop_map(Value::str),
    ]
}

/// A batch-shaped input: one fixed arity and a list of tuples of that
/// arity (a `TupleBatch` holds same-arity rows by construction).
fn arb_batch_rows() -> impl Strategy<Value = (usize, Vec<Tuple>)> {
    let wide_rows =
        proptest::collection::vec(proptest::collection::vec(arb_colliding_value(), 4), 0..40);
    (0usize..=4, wide_rows).prop_map(|(arity, rows)| {
        let rows = rows
            .into_iter()
            .map(|mut values| {
                values.truncate(arity);
                Tuple::new(values)
            })
            .collect();
        (arity, rows)
    })
}

proptest! {
    /// Projection onto all positions is the identity.
    #[test]
    fn full_projection_is_identity(t in arb_tuple(6)) {
        let all: Vec<usize> = (0..t.arity()).collect();
        prop_assert_eq!(t.project(&all), t);
    }

    /// Projection composes: projecting twice equals projecting the
    /// composed position list.
    #[test]
    fn projection_composes(t in arb_tuple(6), seed in any::<u64>()) {
        if t.arity() == 0 { return Ok(()); }
        let p1: Vec<usize> = (0..t.arity()).filter(|i| (seed >> i) & 1 == 1).collect();
        if p1.is_empty() { return Ok(()); }
        let p2: Vec<usize> = (0..p1.len()).rev().collect();
        let composed: Vec<usize> = p2.iter().map(|&i| p1[i]).collect();
        prop_assert_eq!(t.project(&p1).project(&p2), t.project(&composed));
    }

    /// Byte size of a tuple is the sum of its values' sizes and is
    /// invariant under projection permutations.
    #[test]
    fn tuple_bytes_additive(t in arb_tuple(6)) {
        let total: u64 = t.values().iter().map(Value::estimated_bytes).sum();
        prop_assert_eq!(t.estimated_bytes(), total);
        let rev: Vec<usize> = (0..t.arity()).rev().collect();
        prop_assert_eq!(t.project(&rev).estimated_bytes(), total);
    }

    /// Relations are sets: inserting the same tuples in any order yields
    /// equal relations with deterministic iteration order.
    #[test]
    fn relation_insertion_order_irrelevant(
        tuples in proptest::collection::vec(proptest::collection::vec(any::<i64>(), 2), 0..20),
    ) {
        let mut forward = Relation::new("R", 2);
        for t in &tuples {
            forward.insert(Tuple::from_ints(t)).unwrap();
        }
        let mut backward = Relation::new("R", 2);
        for t in tuples.iter().rev() {
            backward.insert(Tuple::from_ints(t)).unwrap();
        }
        prop_assert_eq!(&forward, &backward);
        let order: Vec<Tuple> = forward.iter().cloned().collect();
        let mut sorted = order.clone();
        sorted.sort();
        prop_assert_eq!(order, sorted);
    }

    /// Database fact counting is consistent with relation sizes, and
    /// membership reflects insertion.
    #[test]
    fn database_fact_accounting(
        facts in proptest::collection::vec((0..3u8, proptest::collection::vec(any::<i64>(), 2)), 0..30),
    ) {
        let mut db = Database::new();
        for (r, t) in &facts {
            let name = ["A", "B", "C"][*r as usize];
            db.insert_fact(Fact::new(name, Tuple::from_ints(t))).unwrap();
        }
        let total: usize = db.relations().map(Relation::len).sum();
        prop_assert_eq!(db.fact_count(), total);
        for (r, t) in &facts {
            let name = ["A", "B", "C"][*r as usize];
            prop_assert!(db.contains_fact(&name.into(), &Tuple::from_ints(t)));
        }
    }

    /// Columnar batches are lossless: any same-arity tuple sequence
    /// (random int/str mixes, dictionary collisions included) round-trips
    /// through a `TupleBatch` — row by row, in bulk, and through the wire
    /// encoding — with byte accounting intact.
    #[test]
    fn batch_round_trips_tuples_losslessly(input in arb_batch_rows()) {
        let (arity, rows) = input;
        let mut batch = TupleBatch::new(arity);
        for t in &rows {
            batch.push_tuple(t);
        }
        prop_assert_eq!(batch.len(), rows.len());

        // Row-by-row and bulk materialization both reproduce the input.
        for (i, t) in rows.iter().enumerate() {
            prop_assert_eq!(&batch.tuple(i), t);
            prop_assert_eq!(batch.view(i).to_tuple(), t.clone());
            prop_assert_eq!(batch.row_bytes(i), t.estimated_bytes());
        }
        prop_assert_eq!(batch.to_tuples(), rows.clone());
        let total: u64 = rows.iter().map(Tuple::estimated_bytes).sum();
        prop_assert_eq!(batch.estimated_bytes(), total);

        // View order agrees with Tuple order on every row pair.
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                prop_assert_eq!(
                    batch.view(i).cmp(&batch.view(j)),
                    rows[i].cmp(&rows[j]),
                    "rows {} vs {}", i, j
                );
            }
        }

        // The wire encoding reproduces the same batch.
        let mut buf = Vec::new();
        batch.encode_into(&mut buf).unwrap();
        let mut pos = 0;
        let decoded = TupleBatch::decode_from(&buf, &mut pos).unwrap();
        prop_assert_eq!(pos, buf.len(), "decode must consume the frame");
        prop_assert_eq!(decoded.to_tuples(), rows);
        prop_assert_eq!(decoded.estimated_bytes(), total);
    }

    /// Cross-batch row copies preserve content and byte accounting, and
    /// the target dictionary interns each distinct string at most once
    /// however many source rows repeat it.
    #[test]
    fn batch_row_copies_are_lossless(input in arb_batch_rows()) {
        let (arity, rows) = input;
        let mut src = TupleBatch::new(arity);
        for t in &rows {
            src.push_tuple(t);
        }
        let mut dst = TupleBatch::new(arity);
        // Copy in reverse so source and target row indices differ.
        for i in (0..rows.len()).rev() {
            dst.push_row(&src, i);
        }
        let expected: Vec<Tuple> = rows.iter().rev().cloned().collect();
        prop_assert_eq!(dst.to_tuples(), expected);
        prop_assert_eq!(dst.estimated_bytes(), src.estimated_bytes());
        let distinct: std::collections::BTreeSet<&str> = rows
            .iter()
            .flat_map(|t| t.values())
            .filter_map(|v| match v {
                Value::Str(s) => Some(&**s),
                Value::Int(_) => None,
            })
            .collect();
        prop_assert_eq!(dst.dict().len(), distinct.len());
    }

    /// ByteSize arithmetic is associative/commutative where it should be
    /// and MB conversion is consistent.
    #[test]
    fn bytesize_laws(a in 0u64..1 << 40, b in 0u64..1 << 40, k in 1u64..1000) {
        let (x, y) = (ByteSize::bytes(a), ByteSize::bytes(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y).as_bytes(), a + b);
        prop_assert_eq!(x.scaled(k).as_bytes(), a * k);
        prop_assert!((ByteSize::bytes(a).as_mb() - a as f64 / 1e6).abs() < 1e-9);
        prop_assert_eq!(x.saturating_sub(y) + y.saturating_sub(x),
                        ByteSize::bytes(a.abs_diff(b)));
    }
}
