//! The case runner and the `proptest!` / `prop_assert*` macros.

use crate::rng::TestRng;

/// Per-suite configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case failed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The case asked to be discarded (kept for API parity; unused here).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The fixed suite seed: failures reproduce exactly on rerun.
const SUITE_SEED: u64 = 0x6d5b_5eed_c0de_2016;

/// Runs a property over `config.cases` generated cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Create a runner.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `case` once per generated case, panicking on the first failure
    /// with the case index (the inputs are reproducible from it).
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            let mut rng = TestRng::seed_from_u64(SUITE_SEED.wrapping_add(u64::from(i)));
            if let Err(e) = case(&mut rng) {
                panic!("proptest case {i}/{} failed: {e}", self.config.cases);
            }
        }
    }
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(any::<i64>(), 2)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal: expand each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($config:expr);) => {};
    (@cfg ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(|__proptest_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let mut __proptest_case = || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_items! { @cfg ($config); $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Choose among strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::with_weights(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn runs_and_passes(x in 0u64..100, v in crate::collection::vec(0i64..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x as i64, -1i64);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|&e| e < 5), "bad element in {:?}", v);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_compiles(mask in any::<u32>()) {
            prop_assert_eq!(mask ^ 0xffff_ffff, !mask);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(3));
        runner.run(|_| Err(TestCaseError::fail("boom")));
    }
}
