//! The deterministic generator behind every strategy (SplitMix64).

/// Deterministic test RNG. Each test case gets one seeded from the fixed
/// suite seed plus the case index, so failures are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A usize uniform in `[0, bound)` (`bound` ≥ 1).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}
