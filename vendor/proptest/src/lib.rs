//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Random property testing without shrinking: a [`strategy::Strategy`] is
//! a deterministic-per-seed value generator, the [`proptest!`] macro runs
//! each property over a configurable number of generated cases, and the
//! `prop_assert*` macros fail the current case with a formatted message.
//! Failures report the case number and seed rather than a shrunk
//! counterexample — rerunning is fully deterministic, so the failing case
//! is reproducible by construction.

pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A range of collection sizes: `5`, `0..8` and `1..=4` all convert.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub lo: usize,
        /// Maximum length (inclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` roughly a quarter of the time and
    /// `Some(inner)` otherwise, mirroring proptest's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary + std::fmt::Debug + 'static> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

/// The glob import the proptest docs recommend: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// The `prop::` shorthand module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
