//! Strategies: deterministic-per-seed value generators with combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::collection::SizeRange;
use crate::rng::TestRng;

/// A generator of test values.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the RNG. Combinators (`prop_map`,
/// `prop_recursive`, unions) compose generators directly.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Build recursive values: `depth` levels of `recurse` applied over the
    /// base strategy, with leaves mixed in at every level. The
    /// `desired_size`/`expected_branch_size` hints of real proptest are
    /// accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value>,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::with_weights(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe view of a strategy, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: std::fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T: std::fmt::Debug + 'static> Union<T> {
    /// Uniform choice among `branches`.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        Union::with_weights(branches.into_iter().map(|b| (1, b)).collect())
    }

    /// Weighted choice among `branches`.
    pub fn with_weights(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        let total_weight = branches.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            branches,
            total_weight,
        }
    }
}

impl<T: std::fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight as usize) as u32;
        for (weight, branch) in &self.branches {
            if pick < *weight {
                return branch.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

// ---- numeric ranges as strategies ---------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        *self.start() + rng.unit_f64() * (*self.end() - *self.start())
    }
}

// ---- collections, options, tuples ---------------------------------------

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The result of [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- string patterns ------------------------------------------------------

/// String literals act as regex-like strategies. Only the pattern shape
/// `[a-z]{lo,hi}` (one character class, one counted repetition) is
/// supported — the shape this workspace uses. Anything else panics with a
/// pointer to this file.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_simple_pattern(self).unwrap_or_else(|| {
            panic!(
                "unsupported string strategy pattern {self:?}: the offline \
                 proptest stand-in only handles `[c-c]{{lo,hi}}` patterns \
                 (vendor/proptest/src/strategy.rs)"
            )
        });
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_simple_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let counts = rest.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let class: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            chars.extend((a..=b).collect::<Vec<char>>());
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3i64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = crate::collection::vec(0u8..=3, 2..5).generate(&mut rng);
            assert!((2..5).contains(&w.len()));
            assert!(w.iter().all(|&x| x <= 3));
        }
    }

    #[test]
    fn string_patterns_generate() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "[a-z]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::seed_from_u64(3);
        let mut saw_node = false;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node);
    }
}
