//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of rand 0.8's API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! SplitMix64 — statistically fine for tests and sampling, deterministic
//! for a given seed, and in no way cryptographic.

use std::ops::{Range, RangeInclusive};

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range (the slice of rand's
/// `SampleRange`/`SampleUniform` machinery this workspace needs).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods.
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0..=i)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types with a "standard" uniform distribution (rand's `Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// Uniform sampling over integer ranges via Lemire-style rejection-free
// scaling (widening multiply); bias is < 2^-64 per draw, irrelevant here.
macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        *self.start() + unit * (*self.end() - *self.start())
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for rand's
    /// `StdRng`; same trait surface, different (but fixed) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn spreads_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
