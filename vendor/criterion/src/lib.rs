//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of criterion 0.5's API this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, [`Criterion`] with
//! `benchmark_group`/`bench_function`/`bench_with_input`, [`BenchmarkId`]
//! and [`Bencher::iter`]. Instead of criterion's statistical machinery it
//! times a fixed number of samples and prints median / min / max per
//! benchmark — enough to compare configurations locally.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier (`group/param` style).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying both a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn report(name: &str, results: &mut [Duration]) {
    if results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    results.sort();
    let median = results[results.len() / 2];
    let min = results[0];
    let max = results[results.len() - 1];
    println!(
        "{name:<40} median {:>10.3?}  min {:>10.3?}  max {:>10.3?}  ({} samples)",
        median,
        min,
        max,
        results.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(&id.to_string(), &mut b.results);
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("--- {name} ---");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.results);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut b.results);
        self
    }

    /// Close the group (formatting no-op).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Declare a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
