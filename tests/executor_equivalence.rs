//! Cross-runtime equivalence: the multi-threaded [`ParallelExecutor`] and
//! the deterministic simulator must be observationally identical.
//!
//! For every `datagen` query preset (the paper's full suite: A1–A5, the
//! large B1/B2 queries and the nested C1–C4 programs of Figure 6), both
//! runtimes evaluate the same database and must produce
//!
//! * byte-identical answer relations — every file left in the DFS, final
//!   outputs and intermediates alike;
//! * identical per-job record counts and metered profiles, so the paper's
//!   four metrics (net time, total time, input cost, communication cost)
//!   agree exactly.

use gumbo::datagen::queries;
use gumbo::prelude::*;

fn engine(kind: ExecutorKind) -> GumboEngine {
    GumboEngine::with_executor(
        EngineConfig {
            scale: 5_000,
            ..EngineConfig::default()
        },
        kind,
        EvalOptions::default(),
    )
}

fn presets() -> Vec<gumbo::datagen::Workload> {
    let mut all = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    all.extend(queries::figure6());
    all
}

#[test]
fn parallel_and_simulated_agree_on_every_datagen_preset() {
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(300).database(7);

        let dfs_sim = SimDfs::from_database(&db);
        let stats_sim = engine(ExecutorKind::Simulated)
            .evaluate(&dfs_sim, &workload.query)
            .unwrap_or_else(|e| panic!("{} (simulated): {e}", workload.name));

        let dfs_par = SimDfs::from_database(&db);
        let stats_par = engine(ExecutorKind::Parallel { threads: 4 })
            .evaluate(&dfs_par, &workload.query)
            .unwrap_or_else(|e| panic!("{} (parallel): {e}", workload.name));

        // Byte-identical answer relations: same files, same contents,
        // same estimated sizes.
        let names_sim = dfs_sim.file_names();
        let names_par = dfs_par.file_names();
        assert_eq!(names_sim, names_par, "{}: file sets differ", workload.name);
        for name in &names_sim {
            let (a, b) = (dfs_sim.peek(name).unwrap(), dfs_par.peek(name).unwrap());
            assert_eq!(a, b, "{}: relation {name} differs", workload.name);
            assert_eq!(
                a.estimated_bytes(),
                b.estimated_bytes(),
                "{}: relation {name} byte size differs",
                workload.name
            );
        }

        // Identical per-job record counts and metered profiles.
        assert_eq!(
            stats_sim.num_jobs(),
            stats_par.num_jobs(),
            "{}",
            workload.name
        );
        assert_eq!(
            stats_sim.num_rounds(),
            stats_par.num_rounds(),
            "{}",
            workload.name
        );
        for (a, b) in stats_sim.jobs.iter().zip(&stats_par.jobs) {
            assert_eq!(a.name, b.name, "{}", workload.name);
            assert_eq!(a.round, b.round, "{}: job {}", workload.name, a.name);
            assert_eq!(
                a.output_tuples, b.output_tuples,
                "{}: job {} record counts",
                workload.name, a.name
            );
            assert_eq!(
                a.profile, b.profile,
                "{}: job {} profiles",
                workload.name, a.name
            );
        }

        // The paper's four metrics agree exactly.
        assert!(
            (stats_sim.net_time() - stats_par.net_time()).abs() < 1e-9,
            "{}: net time",
            workload.name
        );
        assert!(
            (stats_sim.total_time() - stats_par.total_time()).abs() < 1e-9,
            "{}: total time",
            workload.name
        );
        assert_eq!(
            stats_sim.input_bytes(),
            stats_par.input_bytes(),
            "{}: input cost",
            workload.name
        );
        assert_eq!(
            stats_sim.communication_bytes(),
            stats_par.communication_bytes(),
            "{}: communication cost",
            workload.name
        );
    }
}

#[test]
fn tiny_budget_spilling_is_observationally_identical_on_every_preset() {
    // A 4 KiB budget is far below every preset's shuffle footprint at 300
    // tuples: every job spills, many with multiple runs. Answer relations
    // must stay byte-identical to the unlimited simulated run and every
    // non-spill statistic must match, on both runtimes — and the tracked
    // shuffle memory must never exceed the budget.
    const BUDGET: u64 = 4096;
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(300).database(7);

        let dfs_ref = SimDfs::from_database(&db);
        let stats_ref = engine(ExecutorKind::Simulated)
            .evaluate(&dfs_ref, &workload.query)
            .unwrap_or_else(|e| panic!("{} (unlimited): {e}", workload.name));
        assert_eq!(stats_ref.spilled_bytes(), 0, "{}", workload.name);

        for kind in [
            ExecutorKind::Simulated,
            ExecutorKind::Parallel { threads: 4 },
        ] {
            let mut budgeted = engine(kind);
            budgeted.options.mem_budget = gumbo::mr::MemBudget::bytes(BUDGET);
            let runtime = budgeted.runtime();
            let dfs = SimDfs::from_database(&db);
            let stats = budgeted
                .eval()
                .on(&*runtime)
                .run(&dfs, &workload.query)
                .unwrap_or_else(|e| panic!("{} ({}, budgeted): {e}", workload.name, kind.label()));

            let label = format!("{} ({}, budget {BUDGET})", workload.name, kind.label());
            gumbo::sched::assert_identical_dfs(&label, &dfs_ref, &dfs);
            gumbo::sched::assert_identical_stats(&label, &stats_ref, &stats);
            assert!(
                stats.spilled_bytes() > 0,
                "{label}: a {BUDGET}-byte budget must force spilling"
            );
            assert!(
                runtime.budget().peak() <= BUDGET,
                "{label}: tracked peak {} exceeded the budget",
                runtime.budget().peak()
            );
        }
    }
}

#[test]
fn parallel_runtime_matches_naive_reference_on_a3() {
    // Independent ground truth: the parallel runtime agrees not just with
    // the simulator but with the direct semantics.
    let workload = queries::a3().with_tuples(400);
    let db = workload.spec.database(3);
    let expected = NaiveEvaluator::new()
        .evaluate_sgf_all(&workload.query, &db)
        .unwrap();

    let dfs = SimDfs::from_database(&db);
    engine(ExecutorKind::Parallel { threads: 0 })
        .evaluate(&dfs, &workload.query)
        .unwrap();
    for q in workload.query.queries() {
        assert_eq!(
            dfs.peek(q.output()).unwrap().as_ref(),
            expected
                .relation(q.output())
                .expect("naive computed all outputs"),
        );
    }
}
