//! Cross-plane equivalence: the columnar batch data plane and the
//! historical pair plane must be observationally identical.
//!
//! For every `datagen` query preset (A1–A5, B1/B2 and the nested C1–C4
//! programs of Figure 6), a single reference run — pair plane, simulator,
//! round barrier, unlimited memory — is compared against **both** planes
//! across the full execution matrix
//!
//! `{simulated, parallel} × {round barrier, DAG scheduler} × {unlimited,
//! 4 KiB budget}`
//!
//! requiring byte-identical answer relations (every file left in the
//! DFS), identical `JobStats` profiles (all byte counters, task
//! durations, record counts) and exact agreement on the paper's four
//! metrics. Spill *statistics* are runtime-dependent and excluded, as
//! everywhere else. Budgeted runs must additionally spill and keep the
//! tracked peak within the budget — proving the columnar plane's batched
//! budget charging still never overshoots.

use gumbo::datagen::queries;
use gumbo::prelude::*;

const BUDGET: u64 = 4096;

fn presets() -> Vec<gumbo::datagen::Workload> {
    let mut all = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    all.extend(queries::figure6());
    all
}

fn engine(plane: DataPlane, kind: ExecutorKind, dag: bool, budget: Option<u64>) -> GumboEngine {
    let mem_budget = match budget {
        Some(bytes) => gumbo::mr::MemBudget::bytes(bytes),
        None => gumbo::mr::MemBudget::UNLIMITED,
    };
    let mut options = EvalOptions {
        mem_budget,
        ..EvalOptions::default()
    };
    if dag {
        options.scheduler = Some(SchedulerConfig {
            max_concurrent_jobs: 3,
            mem_budget,
            ..SchedulerConfig::default()
        });
    }
    GumboEngine::with_executor(
        EngineConfig {
            scale: 5_000,
            data_plane: plane,
            ..EngineConfig::default()
        },
        kind,
        options,
    )
}

/// Run every (plane, runtime, budget) combination on one scheduling path
/// and compare each against the pair-plane reference run.
fn check_matrix(dag: bool) {
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(300).database(7);

        let dfs_ref = SimDfs::from_database(&db);
        let stats_ref = engine(DataPlane::Pairs, ExecutorKind::Simulated, false, None)
            .evaluate(&dfs_ref, &workload.query)
            .unwrap_or_else(|e| panic!("{} (reference): {e}", workload.name));

        for plane in [DataPlane::Pairs, DataPlane::Columnar] {
            for kind in [
                ExecutorKind::Simulated,
                ExecutorKind::Parallel { threads: 4 },
            ] {
                for budget in [None, Some(BUDGET)] {
                    let subject = engine(plane, kind, dag, budget);
                    let runtime = subject.runtime();
                    let dfs = SimDfs::from_database(&db);
                    let label = format!(
                        "{} ({}, {}, {}, budget {:?})",
                        workload.name,
                        plane.label(),
                        kind.label(),
                        if dag { "dag" } else { "rounds" },
                        budget
                    );
                    let stats = subject
                        .eval()
                        .on(&*runtime)
                        .run(&dfs, &workload.query)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));

                    gumbo::sched::assert_identical_dfs(&label, &dfs_ref, &dfs);
                    gumbo::sched::assert_identical_stats(&label, &stats_ref, &stats);
                    if let Some(limit) = budget {
                        assert!(
                            stats.spilled_bytes() > 0,
                            "{label}: a {limit}-byte budget must force spilling"
                        );
                        assert!(
                            runtime.budget().peak() <= limit,
                            "{label}: tracked peak {} exceeded the budget",
                            runtime.budget().peak()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn both_planes_agree_on_every_preset_under_the_round_barrier() {
    check_matrix(false);
}

#[test]
fn both_planes_agree_on_every_preset_under_the_dag_scheduler() {
    check_matrix(true);
}
