//! Filtered-shuffle equivalence: the Bloom-filtered semijoin shuffle
//! must never change an answer, and its statistics must be fully
//! deterministic.
//!
//! For every `datagen` query preset (A1–A5, B1/B2 and the nested C1–C4
//! programs of Figure 6):
//!
//! - a filtered reference run is compared against the **unfiltered**
//!   reference: byte-identical answer relations (every file left in the
//!   DFS) and identical answer-shape statistics (output tuples, job and
//!   round counts). Byte meters legitimately differ — that is the whole
//!   point of the filter — so full stats equality is *not* asserted
//!   across modes;
//! - within the filtered mode, the full execution matrix `{pairs,
//!   columnar} × {simulated, parallel} × {round barrier, DAG scheduler}
//!   × {unlimited, 4 KiB budget}` must agree **exactly** with the
//!   filtered reference: byte-identical DFS and identical statistics
//!   including filter bytes, suppressed-message, probe, and
//!   false-positive counts — the filter is deterministic across
//!   runtimes, data planes, schedulers and memory budgets.
//!
//! Separate tests pin down `auto` mode: it must match `bloom` exactly
//! where the planner predicts a net win, skip filtering entirely where
//! nothing can be saved, and fall back to unfiltered execution when no
//! prediction is possible (analytic estimator without a DFS).

use gumbo::core::estimate::Catalog;
use gumbo::core::Estimator;
use gumbo::datagen::queries;
use gumbo::mr::ShuffleFilterMode;
use gumbo::prelude::*;

const BUDGET: u64 = 4096;
const BLOOM: ShuffleFilterMode = ShuffleFilterMode::Bloom { bits_per_key: 10 };
const AUTO: ShuffleFilterMode = ShuffleFilterMode::Auto { bits_per_key: 10 };

fn presets() -> Vec<Workload> {
    let mut all = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    all.extend(queries::figure6());
    all
}

fn engine(
    mode: ShuffleFilterMode,
    plane: DataPlane,
    kind: ExecutorKind,
    dag: bool,
    budget: Option<u64>,
) -> GumboEngine {
    let mem_budget = match budget {
        Some(bytes) => gumbo::mr::MemBudget::bytes(bytes),
        None => gumbo::mr::MemBudget::UNLIMITED,
    };
    let mut options = EvalOptions {
        mem_budget,
        shuffle_filter: mode,
        ..EvalOptions::default()
    };
    if dag {
        options.scheduler = Some(SchedulerConfig {
            max_concurrent_jobs: 3,
            mem_budget,
            ..SchedulerConfig::default()
        });
    }
    GumboEngine::with_executor(
        EngineConfig {
            scale: 5_000,
            data_plane: plane,
            ..EngineConfig::default()
        },
        kind,
        options,
    )
}

fn output_tuples(stats: &ProgramStats) -> u64 {
    stats.jobs.iter().map(|j| j.output_tuples).sum()
}

/// Filtered runs across one scheduling path: answers identical to the
/// unfiltered reference, statistics identical to the filtered reference.
fn check_matrix(dag: bool) {
    let mut total_suppressed = 0u64;
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(300).database(7);

        let dfs_plain = SimDfs::from_database(&db);
        let stats_plain = engine(
            ShuffleFilterMode::Off,
            DataPlane::Pairs,
            ExecutorKind::Simulated,
            false,
            None,
        )
        .evaluate(&dfs_plain, &workload.query)
        .unwrap_or_else(|e| panic!("{} (unfiltered): {e}", workload.name));

        let dfs_ref = SimDfs::from_database(&db);
        let stats_ref = engine(
            BLOOM,
            DataPlane::Pairs,
            ExecutorKind::Simulated,
            false,
            None,
        )
        .evaluate(&dfs_ref, &workload.query)
        .unwrap_or_else(|e| panic!("{} (filtered reference): {e}", workload.name));

        // Filtering may only remove messages that cannot contribute: the
        // answers (and the answer-shape statistics) never change.
        gumbo::sched::assert_identical_dfs(
            &format!("{} filtered vs unfiltered", workload.name),
            &dfs_plain,
            &dfs_ref,
        );
        assert_eq!(
            output_tuples(&stats_plain),
            output_tuples(&stats_ref),
            "{}: output tuples",
            workload.name
        );
        assert_eq!(
            stats_plain.num_jobs(),
            stats_ref.num_jobs(),
            "{}: job count",
            workload.name
        );
        assert_eq!(
            stats_plain.num_rounds(),
            stats_ref.num_rounds(),
            "{}: round count",
            workload.name
        );
        total_suppressed += stats_ref.suppressed_messages();

        for plane in [DataPlane::Pairs, DataPlane::Columnar] {
            for kind in [
                ExecutorKind::Simulated,
                ExecutorKind::Parallel { threads: 4 },
            ] {
                for budget in [None, Some(BUDGET)] {
                    let subject = engine(BLOOM, plane, kind, dag, budget);
                    let runtime = subject.runtime();
                    let dfs = SimDfs::from_database(&db);
                    let label = format!(
                        "{} (bloom, {}, {}, {}, budget {:?})",
                        workload.name,
                        plane.label(),
                        kind.label(),
                        if dag { "dag" } else { "rounds" },
                        budget
                    );
                    let stats = subject
                        .eval()
                        .on(&*runtime)
                        .run(&dfs, &workload.query)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));

                    gumbo::sched::assert_identical_dfs(&label, &dfs_ref, &dfs);
                    gumbo::sched::assert_identical_stats(&label, &stats_ref, &stats);
                    if let Some(limit) = budget {
                        assert!(
                            stats.spilled_bytes() > 0,
                            "{label}: a {limit}-byte budget must force spilling"
                        );
                        assert!(
                            runtime.budget().peak() <= limit,
                            "{label}: tracked peak {} exceeded the budget",
                            runtime.budget().peak()
                        );
                    }
                }
            }
        }
    }
    assert!(
        total_suppressed > 0,
        "the filter must suppress messages on at least one preset"
    );
}

#[test]
fn filtered_shuffle_is_equivalent_under_the_round_barrier() {
    check_matrix(false);
}

#[test]
fn filtered_shuffle_is_equivalent_under_the_dag_scheduler() {
    check_matrix(true);
}

/// Where the planner predicts a net byte win, `auto` engages the filter
/// and is indistinguishable from `bloom` — same suppression decisions,
/// same meters.
#[test]
fn auto_matches_bloom_when_profitable() {
    let workload = queries::a1();
    let db = workload.spec.clone().with_tuples(300).database(7);

    let dfs_bloom = SimDfs::from_database(&db);
    let stats_bloom = engine(
        BLOOM,
        DataPlane::Pairs,
        ExecutorKind::Simulated,
        false,
        None,
    )
    .evaluate(&dfs_bloom, &workload.query)
    .expect("bloom run");
    assert!(
        stats_bloom.suppressed_messages() > 0,
        "A1 at default selectivity must suppress messages"
    );

    let dfs_auto = SimDfs::from_database(&db);
    let stats_auto = engine(AUTO, DataPlane::Pairs, ExecutorKind::Simulated, false, None)
        .evaluate(&dfs_auto, &workload.query)
        .expect("auto run");

    gumbo::sched::assert_identical_dfs("auto vs bloom", &dfs_bloom, &dfs_auto);
    gumbo::sched::assert_identical_stats("auto vs bloom", &stats_bloom, &stats_auto);
}

/// When every key matches on both sides there is nothing to suppress:
/// `bloom` still pays for its broadcast filters, `auto` predicts zero
/// savings and skips them. Answers are identical in all three modes.
#[test]
fn auto_skips_filtering_when_nothing_can_be_saved() {
    // R(x, y) fully covered by S: every request hits, every assert is
    // requested — zero misses in either direction.
    let mut guard = Relation::new("R", 2);
    let mut cond = Relation::new("S", 1);
    for i in 0..50i64 {
        guard.insert(Tuple::from_ints(&[i, i + 1000])).unwrap();
        cond.insert(Tuple::from_ints(&[i])).unwrap();
    }
    let mut db = Database::new();
    db.add_relation(guard);
    db.add_relation(cond);
    let query = parse_program("Out := SELECT (x, y) FROM R(x, y) WHERE S(x);").unwrap();

    let mut reference: Option<SimDfs> = None;
    for mode in [ShuffleFilterMode::Off, BLOOM, AUTO] {
        let dfs = SimDfs::from_database(&db);
        // Keep the MSJ -> EVAL structure: the fused 1-ROUND plan has no
        // semijoin shuffle to filter.
        let subject = GumboEngine::with_executor(
            EngineConfig {
                scale: 5_000,
                ..EngineConfig::default()
            },
            ExecutorKind::Simulated,
            EvalOptions {
                enable_one_round: false,
                shuffle_filter: mode,
                ..EvalOptions::default()
            },
        );
        let stats = subject
            .evaluate(&dfs, &query)
            .unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
        match mode {
            ShuffleFilterMode::Off => assert_eq!(stats.filter_bytes(), 0),
            ShuffleFilterMode::Bloom { .. } => {
                // Forced filtering: the broadcast is paid, nothing saved.
                assert!(stats.filter_bytes() > 0, "bloom pays for its filters");
                assert_eq!(stats.suppressed_messages(), 0, "every key matches");
            }
            ShuffleFilterMode::Auto { .. } => {
                assert_eq!(
                    stats.filter_bytes(),
                    0,
                    "auto must skip an unprofitable filter"
                );
                assert_eq!(stats.suppressed_messages(), 0);
            }
        }
        match &reference {
            None => reference = Some(dfs),
            Some(expected) => gumbo::sched::assert_identical_dfs(
                &format!("mode {}", mode.label()),
                expected,
                &dfs,
            ),
        }
    }
}

/// The analytic estimator has no DFS to peek at, so it can never predict
/// filter savings — and without a prediction, `auto` runs unfiltered. A
/// DFS-backed estimator over the same catalog does produce one.
#[test]
fn analytic_estimator_yields_no_prediction() {
    let workload = queries::a1().with_tuples(50);
    let db = workload.spec.database(7);
    let dfs = SimDfs::from_database(&db);
    let ctx = QueryContext::new(workload.query.queries().to_vec()).expect("context");

    let analytic = Estimator::analytic(
        Catalog::from_dfs(&dfs, 1),
        CostConstants::default(),
        CostModelKind::Gumbo,
    );
    assert!(
        analytic
            .msj_filter_prediction(&ctx, &[0], PayloadMode::Reference, 10)
            .is_none(),
        "no DFS, no prediction"
    );

    let exact = Estimator::new(
        &dfs,
        1,
        CostConstants::default(),
        CostModelKind::Gumbo,
        64,
        7,
    );
    let pred = exact
        .msj_filter_prediction(&ctx, &[0], PayloadMode::Reference, 10)
        .expect("DFS-backed estimators predict");
    assert!(pred.filter_bytes.as_bytes() > 0);
    assert!((0.0..1.0).contains(&pred.predicted_fp_rate));
}
