//! Executable rendition of Appendix A: the Subset-Sum reduction behind
//! Theorem 2 (NP-completeness of SGF-Opt).
//!
//! The reduction builds BSGF queries `fᵢ = Rᵢ(xᵢ, yᵢ) ⋉ Sᵢ(xᵢ, 1)` with
//! `|Sᵢ| = aᵢ` (1 MB tuples), empty `Rᵢ`, and a collector query `f°` whose
//! atoms mention every `Rᵢ` and `Sᵢ`; all cost constants are 0 except
//! `hr = 1`. The proof relies on three cost identities, which we verify on
//! the actual estimator:
//!
//! 1. `cost(GOPT({fᵢ})) = aᵢ`;
//! 2. `cost(GOPT({fᵢ, f_j})) = aᵢ + a_j` (no interaction);
//! 3. grouping `fᵢ` with `f°` is absorbed into `γ = Σ aᵢ` (`f°` already
//!    reads every relation, so adding `fᵢ` is free).

use std::collections::BTreeSet;

use gumbo::core::estimate::{Catalog, RelStats};
use gumbo::core::planner::greedy_partition;
use gumbo::core::{Estimator, PayloadMode, QueryContext};
use gumbo::prelude::*;

/// The subset-sum instance A = {3, 5, 7} (MB-sized relations).
const A: [u64; 3] = [3, 5, 7];

fn reduction_catalog() -> Catalog {
    let mut catalog = Catalog::default();
    for (i, &a) in A.iter().enumerate() {
        // R_i empty; S_i holds a_i one-MB tuples (modeled as bytes).
        catalog.insert(
            format!("R{i}").into(),
            RelStats {
                bytes: ByteSize::ZERO,
                tuples: 0,
                arity: 2,
            },
        );
        catalog.insert(
            format!("S{i}").into(),
            RelStats {
                bytes: ByteSize::mb(a),
                tuples: a,
                arity: 2,
            },
        );
    }
    catalog.insert(
        "Rc".into(),
        RelStats {
            bytes: ByteSize::ZERO,
            tuples: 0,
            arity: 2,
        },
    );
    catalog
}

fn reduction_queries() -> Vec<BsgfQuery> {
    let mut queries = Vec::new();
    for i in 0..A.len() {
        queries.push(
            parse_query(&format!(
                "F{i} := SELECT (x, y) FROM R{i}(x, y) WHERE S{i}(x, 1);"
            ))
            .unwrap(),
        );
    }
    // f°: mentions all R_i and S_i.
    let atoms: Vec<String> = (0..A.len())
        .flat_map(|i| [format!("R{i}(q{i}, p{i})"), format!("S{i}(s{i}, 1)")])
        .collect();
    queries.push(
        parse_query(&format!(
            "Fc := SELECT (x, y) FROM Rc(x, y) WHERE {};",
            atoms.join(" AND ")
        ))
        .unwrap(),
    );
    queries
}

fn estimator() -> Estimator<'static> {
    Estimator::analytic(
        reduction_catalog(),
        CostConstants::appendix_a(),
        CostModelKind::Gumbo,
    )
}

#[test]
fn individual_query_costs_equal_their_weights() {
    // cost(GOPT({f_i})) = a_i: only the hr-read of S_i is charged (R_i is
    // empty and every other constant is zero). EVAL reads nothing.
    let est = estimator();
    for (i, &a) in A.iter().enumerate() {
        let q = &reduction_queries()[i];
        let ctx = QueryContext::new(vec![q.clone()]).unwrap();
        let msj = est
            .msj_cost(&ctx, &[0], PayloadMode::Reference, &JobConfig::default())
            .unwrap();
        assert!(
            (msj - a as f64).abs() < 1e-9,
            "cost(f{i}) = {msj}, expected {a}"
        );
    }
}

#[test]
fn pairs_cost_their_sum() {
    // cost(GOPT({f_i, f_j})) = a_i + a_j regardless of grouping: the two
    // queries share no relations.
    let est = estimator();
    let queries = reduction_queries();
    let ctx = QueryContext::new(vec![queries[0].clone(), queries[1].clone()]).unwrap();
    let cfg = JobConfig::default();
    let together = est
        .msj_cost(&ctx, &[0, 1], PayloadMode::Reference, &cfg)
        .unwrap();
    let separate = est
        .msj_cost(&ctx, &[0], PayloadMode::Reference, &cfg)
        .unwrap()
        + est
            .msj_cost(&ctx, &[1], PayloadMode::Reference, &cfg)
            .unwrap();
    assert!(
        (together - (A[0] + A[1]) as f64).abs() < 1e-9,
        "together = {together}"
    );
    assert!((separate - together).abs() < 1e-9);
}

#[test]
fn collector_absorbs_any_member_for_free() {
    // f° reads every S_i already: cost(GOPT({f_i, f°})) = γ = Σ a_i, so
    // greedy always groups f_i with f° (the γ-absorption of the proof).
    let est = estimator();
    let queries = reduction_queries();
    let gamma: u64 = A.iter().sum();
    let cfg = JobConfig::default();

    let collector = QueryContext::new(vec![queries[3].clone()]).unwrap();
    let all: Vec<usize> = (0..collector.semijoins().len()).collect();
    let alone = est
        .msj_cost(&collector, &all, PayloadMode::Reference, &cfg)
        .unwrap();
    assert!(
        (alone - gamma as f64).abs() < 1e-9,
        "cost(f°) = {alone}, γ = {gamma}"
    );

    let with_f0 = QueryContext::new(vec![queries[0].clone(), queries[3].clone()]).unwrap();
    let all: Vec<usize> = (0..with_f0.semijoins().len()).collect();
    let merged = est
        .msj_cost(&with_f0, &all, PayloadMode::Reference, &cfg)
        .unwrap();
    assert!(
        (merged - gamma as f64).abs() < 1e-9,
        "cost(f0 ∪ f°) = {merged}, expected γ = {gamma}"
    );
}

#[test]
fn greedy_partition_realizes_the_reduction_structure() {
    // Running Greedy-BSGF over {f0, f1, f2, f°}'s semi-joins groups every
    // f_i's semi-join with f°'s (each merge saves a full S_i read), giving
    // a single block of total cost γ.
    let est = estimator();
    let queries = reduction_queries();
    let ctx = QueryContext::new(queries).unwrap();
    let n = ctx.semijoins().len();
    let cfg = JobConfig::default();
    let mut cost_fn = |b: &BTreeSet<usize>| {
        let ids: Vec<usize> = b.iter().copied().collect();
        est.msj_cost(&ctx, &ids, PayloadMode::Reference, &cfg)
            .unwrap()
    };
    let (blocks, total) = greedy_partition(n, &mut cost_fn);
    let gamma: u64 = A.iter().sum();
    // The γ-absorption: total cost collapses to γ = Σ aᵢ (each Sᵢ read
    // exactly once), because every fᵢ semi-join is co-grouped with the f°
    // semi-join over the same Sᵢ. (Greedy leaves f°'s zero-cost Rᵢ
    // semi-joins as their own blocks — merging them has zero gain.)
    assert!(
        (total - gamma as f64).abs() < 1e-9,
        "total = {total}, γ = {gamma}"
    );
    for i in 0..A.len() {
        let f_i_block = blocks.iter().find(|b| b.contains(&i)).unwrap();
        let partner = ctx
            .semijoins()
            .iter()
            .find(|sj| {
                sj.query_idx == A.len() // f°'s sjs
                    && sj.cond.relation().as_str() == format!("S{i}")
            })
            .unwrap();
        assert!(
            f_i_block.contains(&partner.id),
            "f{i} should share a job with f°'s S{i} semi-join: {blocks:?}"
        );
    }
}
