//! Allocation-count smoke tests for the columnar data plane.
//!
//! The point of the batch layer is fewer, larger allocations: tuples live
//! in shared arenas (one `Vec` per column plus one dictionary) instead of
//! one `Vec<Value>` + `Arc` per tuple and one `BTreeMap` node per shuffle
//! pair. These tests pin that property down with a counting global
//! allocator: under a spill-forcing budget the columnar shuffle path must
//! *allocate* (call count, not bytes) at least 10× less often than the
//! legacy pair path on the same A3-derived pair stream, and it must stay
//! ahead even fully in memory. The thresholds are deliberately loose —
//! the measured gaps are larger — so the test stays a smoke check, not a
//! benchmark.
//!
//! The counter only tracks `alloc` calls (reallocs count once; frees are
//! ignored), and the two measured regions run under a `Mutex` so the
//! counts cannot interleave.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gumbo::datagen::queries;
use gumbo::mr::{
    BatchPartition, MemBudget, MemoryBudget, Message, PairBatch, Payload, ShuffleSpill,
    SpillingPartition,
};
use gumbo::prelude::*;

/// A pass-through allocator that counts `alloc`/`realloc` calls.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the measured regions across tests in this binary.
static MEASURE: Mutex<()> = Mutex::new(());

/// Run `f` and return how many allocation calls it made.
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// The shuffle stream both planes are measured on: every tuple of the A3
/// preset database keyed by its guard attribute (so many messages land on
/// each reducer key, as in a real semi-join round), carrying the paper's
/// fixed-width request messages (`Assert` and `Req`/`Ref` — 4 and
/// 14 bytes, no tuple payloads).
fn a3_pairs() -> Vec<(Tuple, Message)> {
    let workload = queries::a3();
    let db = workload.spec.clone().with_tuples(400).database(11);
    let mut pairs = Vec::new();
    for relation in db.relations() {
        for tuple in relation.iter() {
            // Three conditionals interrogate each guard tuple, as in the
            // A3 query's three-atom condition.
            for _ in 0..3 {
                let seq = pairs.len() as u32;
                let key = tuple.project(&[0]);
                let msg = if seq % 2 == 0 {
                    Message::Assert { cond: seq }
                } else {
                    Message::Req {
                        cond: seq,
                        payload: Payload::Ref {
                            guard: 0,
                            id: u64::from(seq),
                        },
                    }
                };
                pairs.push((key, msg));
            }
        }
    }
    assert!(pairs.len() >= 500, "A3 preset must yield a real stream");
    pairs
}

/// Drain a pair-plane partition end to end, returning the group count.
fn run_pairs(pairs: &[(Tuple, Message)], budget: &MemoryBudget) -> usize {
    let spill = ShuffleSpill::new("alloc-smoke-pairs");
    let mut part = SpillingPartition::new(0, budget, &spill, 1);
    for (k, v) in pairs {
        part.push(k.clone(), v.clone()).unwrap();
    }
    let (mut stream, _) = part.into_groups().unwrap();
    let mut groups = 0;
    while let Some(_group) = stream.next_group().unwrap() {
        groups += 1;
    }
    groups
}

/// Drain a columnar partition end to end, returning the group count.
fn run_columnar(pairs: &[(Tuple, Message)], budget: &MemoryBudget) -> usize {
    let spill = ShuffleSpill::new("alloc-smoke-columnar");
    let mut part = BatchPartition::new(0, budget, &spill, 1);
    let mut batch = PairBatch::new();
    for (k, v) in pairs {
        batch.push_pair(k, v);
    }
    part.push_batch(&batch).unwrap();
    drop(batch);
    let (mut stream, _) = part.into_groups().unwrap();
    let mut groups = 0;
    let mut values = Vec::new();
    while let Some(_key) = stream.next_group_into(&mut values).unwrap() {
        groups += 1;
    }
    groups
}

/// The columnar shuffle allocates ≥10× fewer times than the legacy pair
/// shuffle on the same stream, with and without a spill-forcing budget.
#[test]
fn columnar_shuffle_allocates_ten_times_less() {
    let _serial = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let pairs = a3_pairs();
    for (limit, floor) in [(MemBudget::UNLIMITED, 1), (MemBudget::bytes(4096), 10)] {
        let pair_budget = MemoryBudget::new(limit);
        let batch_budget = MemoryBudget::new(limit);
        let (legacy, pair_groups) = count_allocations(|| run_pairs(&pairs, &pair_budget));
        let (columnar, batch_groups) = count_allocations(|| run_columnar(&pairs, &batch_budget));
        assert_eq!(pair_groups, batch_groups, "both planes see the same groups");
        // Measured locally: ~1.9x in memory, ~31x once the budget forces
        // per-pair spill decoding on the legacy plane; the floors leave
        // generous headroom against allocator jitter.
        assert!(
            columnar * floor < legacy,
            "columnar plane must allocate >={floor}x less under budget {limit:?}: \
             legacy {legacy}, columnar {columnar}"
        );
    }
}

/// With no trace sink installed, the observability hot path performs
/// zero heap allocations: dead spans carry an empty `Vec`, field-fill
/// closures never run, and metrics skip lazy registration entirely.
#[test]
fn disabled_tracing_allocates_nothing() {
    let _serial = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(
        !gumbo::obs::enabled(),
        "no sink is ever installed in this test binary"
    );
    static PROBE: gumbo::obs::Counter = gumbo::obs::Counter::new("alloc_smoke.probe");
    let (allocs, ()) = count_allocations(|| {
        for i in 0..1000u64 {
            let mut span = gumbo::obs::span_with("map", |f| {
                f.u64("i", i);
                f.str("job", "never-evaluated");
            });
            gumbo::obs::event("budget:exhausted", |f| f.u64("bytes", i));
            span.record(|f| f.u64("post", i));
            drop(span);
            PROBE.incr();
        }
    });
    assert_eq!(allocs, 0, "disabled tracing must not allocate");
}

/// `Tuple::project` on all-int tuples performs one allocation per call
/// (the projected `Vec<Value>` + its `Arc` header) — no per-value clones.
#[test]
fn int_projection_allocates_once_per_tuple() {
    let _serial = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let tuples: Vec<Tuple> = (0..1000)
        .map(|i| Tuple::from_ints(&[i, i + 1, i + 2]))
        .collect();
    let (allocs, projected) = count_allocations(|| {
        tuples
            .iter()
            .map(|t| t.project(&[2, 0]))
            .collect::<Vec<Tuple>>()
    });
    assert_eq!(projected.len(), 1000);
    // One Arc<[Value]> per projection plus the collecting Vec's growth.
    assert!(
        allocs <= 1100,
        "1000 int projections should allocate ~1 time each, saw {allocs}"
    );
}
