//! Tracing smoke tests: the observability plane must tell the truth.
//!
//! Three properties are pinned down across the whole execution matrix
//! (every datagen preset × both executors × both scheduling paths ×
//! both data planes):
//!
//! * **balance** — on every worker lane, span Begin/End events bracket
//!   like parentheses with matching names, and nothing is left open;
//! * **reconciliation** — the byte fields on `spill:run` spans sum to
//!   exactly each job's `JobStats::spilled_bytes`, and every estimated
//!   job's `commit` span carries the same estimated/observed cost pair
//!   as the stats it committed (the calibration ledger);
//! * **crash-consistency** — a panic inside an instrumented phase still
//!   closes every span (marked `aborted`) and the Chrome exporter
//!   still produces a well-formed JSON document.
//!
//! The tracer is process-global, so every test here serializes on one
//! mutex and uninstalls before asserting.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use gumbo::common::RelationName;
use gumbo::datagen::queries;
use gumbo::obs::json::Json;
use gumbo::obs::{Event, EventKind, FieldValue, RingSink};
use gumbo::prelude::*;

/// Tracer state is process-global; tests that install sinks take this
/// lock so their event streams cannot interleave.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn presets() -> Vec<gumbo::datagen::Workload> {
    let mut all = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    all.extend(queries::figure6());
    all
}

fn field_str<'a>(event: &'a Event, key: &str) -> Option<&'a str> {
    event.fields.iter().find(|f| f.key == key).and_then(|f| {
        if let FieldValue::Str(s) = &f.value {
            Some(s.as_str())
        } else {
            None
        }
    })
}

fn field_u64(event: &Event, key: &str) -> Option<u64> {
    event.fields.iter().find(|f| f.key == key).and_then(|f| {
        if let FieldValue::U64(n) = f.value {
            Some(n)
        } else {
            None
        }
    })
}

fn field_f64(event: &Event, key: &str) -> Option<f64> {
    event.fields.iter().find(|f| f.key == key).and_then(|f| {
        if let FieldValue::F64(x) = f.value {
            Some(x)
        } else {
            None
        }
    })
}

/// Per-lane bracket check: every End closes the most recent Begin of
/// the same name on its lane, and all lanes end empty.
fn assert_balanced(label: &str, events: &[Event]) {
    let mut stacks: HashMap<u64, Vec<&'static str>> = HashMap::new();
    for event in events {
        let stack = stacks.entry(event.lane).or_default();
        match event.kind {
            EventKind::Begin => stack.push(event.name),
            EventKind::End => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!(
                        "{label}: End {:?} with no open span on lane {}",
                        event.name, event.lane
                    )
                });
                assert_eq!(
                    open, event.name,
                    "{label}: End {:?} closes open span {open:?} on lane {}",
                    event.name, event.lane
                );
            }
            EventKind::Instant => {}
        }
    }
    for (lane, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "{label}: unclosed spans {stack:?} on lane {lane}"
        );
    }
}

fn traced_run(
    workload: &gumbo::datagen::Workload,
    executor: ExecutorKind,
    scheduler: Option<SchedulerConfig>,
    plane: gumbo::mr::DataPlane,
    budget: gumbo::mr::MemBudget,
) -> (Vec<Event>, ProgramStats) {
    let db = workload.spec.clone().with_tuples(120).database(11);
    let engine = GumboEngine::with_executor(
        EngineConfig {
            scale: 5_000,
            data_plane: plane,
            ..EngineConfig::default()
        },
        executor,
        EvalOptions {
            scheduler,
            mem_budget: budget,
            ..EvalOptions::default()
        },
    );
    let dfs = SimDfs::from_database(&db);
    let ring = Arc::new(RingSink::new(1 << 20));
    gumbo::obs::install(ring.clone());
    let result = engine.evaluate(&dfs, &workload.query);
    gumbo::obs::uninstall();
    let stats = result.unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    assert_eq!(ring.dropped(), 0, "{}: ring sink overflowed", workload.name);
    (ring.events(), stats)
}

/// Every preset × executor × scheduler × data plane leaves a balanced
/// trace with one `job` span and one full phase set per executed job.
#[test]
fn spans_balance_across_the_execution_matrix() {
    let _serial = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    for workload in presets() {
        for executor in [
            ExecutorKind::Simulated,
            ExecutorKind::Parallel { threads: 2 },
        ] {
            for scheduler in [
                None,
                Some(SchedulerConfig {
                    max_concurrent_jobs: 3,
                    ..SchedulerConfig::default()
                }),
            ] {
                for plane in [gumbo::mr::DataPlane::Pairs, gumbo::mr::DataPlane::Columnar] {
                    let scheduled = scheduler.is_some();
                    let label = format!(
                        "{} ({}, {}, {plane:?})",
                        workload.name,
                        executor.label(),
                        if scheduled { "dag" } else { "rounds" },
                    );
                    let (events, stats) = traced_run(
                        &workload,
                        executor,
                        scheduler,
                        plane,
                        gumbo::mr::MemBudget::UNLIMITED,
                    );
                    assert_balanced(&label, &events);
                    let begins = |name: &str| {
                        events
                            .iter()
                            .filter(|e| e.kind == EventKind::Begin && e.name == name)
                            .count()
                    };
                    let jobs = stats.num_jobs();
                    for phase in ["job", "plan", "map", "shuffle:flush", "reduce", "commit"] {
                        assert_eq!(
                            begins(phase),
                            jobs,
                            "{label}: expected one {phase:?} span per job"
                        );
                    }
                    let claims = events
                        .iter()
                        .filter(|e| e.kind == EventKind::Instant && e.name == "sched:claim")
                        .count();
                    if scheduled {
                        assert_eq!(claims, jobs, "{label}: one claim per scheduled job");
                        // Nesting: each job span opens on the lane that
                        // just emitted its claim, so the most recent
                        // claim on that lane names the same job.
                        for begin in events
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| e.kind == EventKind::Begin && e.name == "job")
                        {
                            let (idx, job_span) = begin;
                            let claim = events[..idx]
                                .iter()
                                .rev()
                                .find(|e| e.lane == job_span.lane && e.name == "sched:claim")
                                .unwrap_or_else(|| {
                                    panic!("{label}: job span without a prior claim on its lane")
                                });
                            assert_eq!(
                                field_str(claim, "job"),
                                field_str(job_span, "job"),
                                "{label}: job span nests under a different job's claim"
                            );
                        }
                    } else {
                        assert_eq!(
                            claims, 0,
                            "{label}: no scheduler events on the barrier path"
                        );
                    }
                }
            }
        }
    }
}

/// Under a spill-forcing budget, the `spill:run` spans' byte fields sum
/// to exactly each job's `spilled_bytes`, and the `commit` ledger
/// matches the stats' estimated/observed costs — on both data planes.
#[test]
fn spill_spans_and_commit_ledger_reconcile_with_job_stats() {
    let _serial = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let workload = queries::a3();
    for plane in [gumbo::mr::DataPlane::Pairs, gumbo::mr::DataPlane::Columnar] {
        let (events, stats) = traced_run(
            &workload,
            ExecutorKind::Simulated,
            Some(SchedulerConfig::default()),
            plane,
            gumbo::mr::MemBudget::bytes(4096),
        );
        assert!(
            stats.spilled_bytes() > 0,
            "{plane:?}: the 4 KiB budget must force spilling"
        );

        // Per-job reconciliation: spill:run Begin events carry the exact
        // increment each flush applied to the job's spilled_bytes.
        let mut traced_bytes: HashMap<&str, u64> = HashMap::new();
        for event in events
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == "spill:run")
        {
            let job = field_str(event, "job").expect("spill:run spans carry the job label");
            let bytes = field_u64(event, "bytes").expect("spill:run spans carry a byte count");
            *traced_bytes.entry(job).or_default() += bytes;
        }
        for job in &stats.jobs {
            assert_eq!(
                traced_bytes.get(job.name.as_str()).copied().unwrap_or(0),
                job.spilled_bytes,
                "{plane:?}: spill:run bytes disagree with stats for job {}",
                job.name
            );
        }

        // The calibration ledger: every estimated job's commit span ends
        // with the same estimated/observed pair as its JobStats.
        for job in &stats.jobs {
            let commit = events
                .iter()
                .find(|e| {
                    e.kind == EventKind::End
                        && e.name == "commit"
                        && field_str(e, "job") == Some(job.name.as_str())
                })
                .unwrap_or_else(|| panic!("{plane:?}: no commit span for job {}", job.name));
            assert_eq!(
                field_f64(commit, "observed_cost"),
                Some(job.total_cost),
                "{plane:?}: observed cost mismatch for {}",
                job.name
            );
            assert_eq!(
                field_f64(commit, "estimated_cost"),
                job.estimated_cost,
                "{plane:?}: estimated cost mismatch for {}",
                job.name
            );
            if let Some(expected) = job.estimate_error() {
                let traced = field_f64(commit, "estimate_error")
                    .unwrap_or_else(|| panic!("{plane:?}: {} has no ledger ratio", job.name));
                assert!(
                    (traced - expected).abs() < 1e-12,
                    "{plane:?}: estimate_error {traced} vs {expected} for {}",
                    job.name
                );
            }
        }
        assert!(
            stats.jobs.iter().any(|j| j.estimated_cost.is_some()),
            "{plane:?}: planner-built jobs must carry estimates"
        );
    }
}

/// A reducer that panics mid-phase: spans still close (marked aborted)
/// and the Chrome trace file remains one well-formed JSON array.
#[test]
fn panicking_reducer_leaves_closed_spans_and_valid_chrome_json() {
    let _serial = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());

    struct KeyEcho;
    impl gumbo::mr::Mapper for KeyEcho {
        fn map(&self, fact: &Fact, _index: u64, emit: &mut dyn FnMut(Tuple, gumbo::mr::Message)) {
            emit(fact.tuple.clone(), gumbo::mr::Message::Assert { cond: 0 });
        }
    }
    struct Bomb;
    impl gumbo::mr::Reducer for Bomb {
        fn reduce(
            &self,
            _key: &Tuple,
            _values: &[gumbo::mr::Message],
            _emit: &mut dyn FnMut(&RelationName, Tuple),
        ) {
            panic!("reducer bomb");
        }
    }

    let mut db = Database::new();
    for i in 0..16i64 {
        db.insert_fact(Fact::new("R", Tuple::from_ints(&[i])))
            .unwrap();
    }
    let mut program = MrProgram::new();
    program.push_round(vec![gumbo::mr::Job {
        name: "bomb".into(),
        inputs: vec!["R".into()],
        outputs: vec![("Out".into(), 1)],
        mapper: Box::new(KeyEcho),
        reducer: Box::new(Bomb),
        config: JobConfig::default(),
        estimate: None,
        filter: None,
    }]);

    let path = std::env::temp_dir().join(format!(
        "gumbo-trace-smoke-{}-panic.json",
        std::process::id()
    ));
    let chrome = gumbo::obs::ChromeTraceSink::create(&path).unwrap();
    gumbo::obs::install(Arc::new(chrome));
    let executor = ExecutorKind::Simulated.build(EngineConfig::default());
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let dfs = SimDfs::from_database(&db);
        executor.execute(&dfs, &program)
    }));
    gumbo::obs::uninstall();
    assert!(outcome.is_err(), "the bomb must actually go off");

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let root = Json::parse(&text).expect("a crashed run still writes valid JSON");
    let trace = root.as_arr().expect("a Chrome trace is one array");

    // Per-tid bracket check over the exported file, and every span the
    // unwind closed is flagged aborted.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut aborted = 0;
    for event in trace {
        let ph = event.get("ph").and_then(Json::as_str).unwrap();
        let name = event.get("name").and_then(Json::as_str).unwrap();
        let tid = event.get("tid").and_then(Json::as_u64).unwrap();
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                assert_eq!(stack.pop().as_deref(), Some(name), "misnested {name}");
                if event.get("args").and_then(|a| a.get("aborted")).is_some() {
                    aborted += 1;
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans {stack:?} on tid {tid}");
    }
    assert!(
        trace
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("reduce:task")),
        "the panicking phase must have opened its span"
    );
    assert!(
        aborted >= 2,
        "the unwind crossed at least the reduce:task and job spans, saw {aborted} aborted"
    );
}
