//! Cross-crate integration tests for nested SGF evaluation: the paper's
//! C-workloads and randomized nested programs, under every sort strategy.

use gumbo::baselines::{greedy_sgf_engine, parunit_engine, sequnit_engine};
use gumbo::datagen::queries;
use gumbo::prelude::*;

fn engines() -> Vec<(&'static str, GumboEngine)> {
    let cfg = EngineConfig::unscaled();
    vec![
        ("sequnit", sequnit_engine(cfg)),
        ("parunit", parunit_engine(cfg)),
        ("greedy-sgf", greedy_sgf_engine(cfg)),
        (
            "defaults+1round",
            GumboEngine::new(cfg, EvalOptions::default()),
        ),
        (
            "bruteforce",
            GumboEngine::new(
                cfg,
                EvalOptions {
                    grouping: Grouping::BruteForce,
                    sort: SortStrategy::Optimal,
                    ..EvalOptions::default()
                },
            ),
        ),
    ]
}

fn check_workload(w: &gumbo::datagen::Workload, tuples: usize, seed: u64) {
    let db = w.spec.clone().with_tuples(tuples).database(seed);
    let naive = NaiveEvaluator::new()
        .evaluate_sgf_all(&w.query, &db)
        .unwrap();
    for (name, engine) in engines() {
        let dfs = SimDfs::from_database(&db);
        engine.evaluate(&dfs, &w.query).unwrap();
        for q in w.query.queries() {
            let expected = naive.relation(q.output()).unwrap();
            let got = dfs.peek(q.output()).unwrap();
            assert_eq!(
                got.as_ref(),
                expected,
                "workload {} strategy {name} output {}",
                w.name,
                q.output()
            );
        }
    }
}

#[test]
fn c1_all_strategies() {
    check_workload(&queries::c1(), 600, 11);
}

#[test]
fn c2_all_strategies() {
    check_workload(&queries::c2(), 600, 12);
}

#[test]
fn c3_all_strategies() {
    check_workload(&queries::c3(), 600, 13);
}

#[test]
fn c4_all_strategies() {
    check_workload(&queries::c4(), 600, 14);
}

#[test]
fn table2_workloads_with_default_engine() {
    for w in queries::table2() {
        let db = w.spec.clone().with_tuples(300).database(21);
        let naive = NaiveEvaluator::new()
            .evaluate_sgf_all(&w.query, &db)
            .unwrap();
        let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
        let dfs = SimDfs::from_database(&db);
        engine.evaluate(&dfs, &w.query).unwrap();
        for q in w.query.queries() {
            assert_eq!(
                dfs.peek(q.output()).unwrap().as_ref(),
                naive.relation(q.output()).unwrap(),
                "workload {}",
                w.name
            );
        }
    }
}

#[test]
fn cost_model_stress_query_is_correct() {
    // 48 atoms, all filtered to (near) nothing by the constant.
    let w = queries::cost_model_query().with_tuples(300);
    let db = w.spec.database(3);
    let naive = NaiveEvaluator::new().evaluate_sgf(&w.query, &db).unwrap();
    let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
    let dfs = SimDfs::from_database(&db);
    let (_, got) = engine.eval().run_with_output(&dfs, &w.query).unwrap();
    assert_eq!(got, naive);
    // With selectivity-style filtering, the answer is (almost surely) empty.
    assert!(got.len() <= 1);
}

#[test]
fn query_size_family_is_correct_at_each_size() {
    for k in [1usize, 2, 5, 9, 16] {
        let w = queries::a3_family(k).with_tuples(300);
        let db = w.spec.database(k as u64);
        let naive = NaiveEvaluator::new().evaluate_sgf(&w.query, &db).unwrap();
        let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
        let dfs = SimDfs::from_database(&db);
        let (stats, got) = engine.eval().run_with_output(&dfs, &w.query).unwrap();
        assert_eq!(got, naive, "k = {k}");
        // Same-key family always fuses to a single job.
        assert_eq!(stats.num_jobs(), 1, "k = {k}");
    }
}

#[test]
fn deep_chain_program() {
    // A 6-level chain exercising intermediate materialization.
    let mut text = String::from("Z0 := SELECT (x, y) FROM R(x, y) WHERE S(x);\n");
    for i in 1..6 {
        text.push_str(&format!(
            "Z{i} := SELECT (x, y) FROM Z{}(x, y) WHERE S(y) OR T(x);\n",
            i - 1
        ));
    }
    let query = parse_program(&text).unwrap();
    let mut db = Database::new();
    for i in 0..30i64 {
        db.insert_fact(Fact::new("R", Tuple::from_ints(&[i % 6, (i + 1) % 6])))
            .unwrap();
    }
    for v in 0..4i64 {
        db.insert_fact(Fact::new("S", Tuple::from_ints(&[v])))
            .unwrap();
        db.insert_fact(Fact::new("T", Tuple::from_ints(&[v + 2])))
            .unwrap();
    }
    let expected = NaiveEvaluator::new().evaluate_sgf(&query, &db).unwrap();
    for (name, engine) in engines() {
        // Brute-force sort enumeration over a 6-chain is fine (1 sort).
        let dfs = SimDfs::from_database(&db);
        let (_, got) = engine.eval().run_with_output(&dfs, &query).unwrap();
        assert_eq!(got, expected, "strategy {name}");
    }
}

#[test]
fn stats_invariants_hold() {
    let w = queries::c3();
    let db = w.spec.clone().with_tuples(400).database(5);
    let engine = GumboEngine::new(EngineConfig::default(), EvalOptions::default());
    let dfs = SimDfs::from_database(&db);
    let stats = engine.evaluate(&dfs, &w.query).unwrap();
    // Net time never exceeds total time (total sums all tasks + overheads;
    // net schedules them onto >= 1 slots with shared per-round overhead).
    assert!(stats.net_time() <= stats.total_time() + 1e-6);
    assert!(stats.input_bytes() > ByteSize::ZERO);
    assert!(stats.communication_bytes() > ByteSize::ZERO);
    assert_eq!(stats.jobs.len(), stats.num_jobs());
    // Every job cost decomposes as overhead + map + reduce.
    for j in &stats.jobs {
        assert!(
            (j.total_cost - (10.0 + j.map_cost + j.reduce_cost)).abs() < 1e-6,
            "job {} cost decomposition",
            j.name
        );
    }
}
