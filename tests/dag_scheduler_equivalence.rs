//! Scheduler equivalence: the dependency-driven DAG scheduler must be
//! observationally identical to round-barrier execution.
//!
//! This extends the PR-1 executor-equivalence harness one layer up: for
//! every `datagen` query preset (A1–A5, B1/B2, and the nested C1–C4
//! programs of Figure 6), the same engine evaluates the same database
//! twice — once on the round-barrier path, once with
//! `EvalOptions::scheduler` set — and must produce
//!
//! * byte-identical answer relations (every file left in the DFS,
//!   intermediates included) and identical DFS byte counters;
//! * identical per-job statistics and identical reconstructed per-round
//!   wall-clock accounting, so the paper's four metrics agree exactly.
//!
//! The scheduler may only change *when* jobs run, never what they
//! compute or how they are metered.

use gumbo::datagen::queries;
use gumbo::prelude::*;

fn engine(scheduler: Option<SchedulerConfig>, executor: ExecutorKind) -> GumboEngine {
    GumboEngine::with_executor(
        EngineConfig {
            scale: 5_000,
            ..EngineConfig::default()
        },
        executor,
        EvalOptions {
            scheduler,
            ..EvalOptions::default()
        },
    )
}

fn presets() -> Vec<gumbo::datagen::Workload> {
    let mut all = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    all.extend(queries::figure6());
    all
}

/// One definition of "observationally identical", shared with the
/// `dagsched` benchmark and the scheduler's own unit tests —
/// byte-identical DFS contents (metered I/O included), identical per-job
/// statistics, and exact agreement on the paper's four metrics.
fn assert_equivalent(
    name: &str,
    dfs_rounds: &SimDfs,
    stats_rounds: &ProgramStats,
    dfs_dag: &SimDfs,
    stats_dag: &ProgramStats,
) {
    gumbo::sched::assert_identical_dfs(name, dfs_rounds, dfs_dag);
    gumbo::sched::assert_identical_stats(name, stats_rounds, stats_dag);
}

#[test]
fn dag_scheduler_matches_round_barrier_on_every_datagen_preset() {
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(300).database(7);

        let dfs_rounds = SimDfs::from_database(&db);
        let stats_rounds = engine(None, ExecutorKind::Simulated)
            .evaluate(&dfs_rounds, &workload.query)
            .unwrap_or_else(|e| panic!("{} (rounds): {e}", workload.name));

        for max_jobs in [1usize, 4] {
            let scheduler = Some(SchedulerConfig {
                max_concurrent_jobs: max_jobs,
                ..SchedulerConfig::default()
            });
            let dfs_dag = SimDfs::from_database(&db);
            let stats_dag = engine(scheduler, ExecutorKind::Simulated)
                .evaluate(&dfs_dag, &workload.query)
                .unwrap_or_else(|e| panic!("{} (dag x{max_jobs}): {e}", workload.name));
            assert_equivalent(
                &format!("{} (max_jobs={max_jobs})", workload.name),
                &dfs_rounds,
                &stats_rounds,
                &dfs_dag,
                &stats_dag,
            );
        }
    }
}

#[test]
fn dag_scheduler_with_tiny_budget_matches_unbudgeted_round_barrier() {
    // The scheduled path under a 4 KiB shuffle budget: concurrent jobs
    // share one tracker, spill to disk, and must still leave the same
    // bytes in the DFS with the same non-spill statistics as unlimited
    // round-barrier execution — for every preset.
    const BUDGET: u64 = 4096;
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(300).database(7);

        let dfs_rounds = SimDfs::from_database(&db);
        let stats_rounds = engine(None, ExecutorKind::Simulated)
            .evaluate(&dfs_rounds, &workload.query)
            .unwrap_or_else(|e| panic!("{} (rounds): {e}", workload.name));

        let scheduler = Some(SchedulerConfig {
            max_concurrent_jobs: 4,
            mem_budget: gumbo::mr::MemBudget::bytes(BUDGET),
            ..SchedulerConfig::default()
        });
        let budgeted = engine(scheduler, ExecutorKind::Simulated);
        let runtime = budgeted.runtime();
        let dfs_dag = SimDfs::from_database(&db);
        let stats_dag = budgeted
            .eval()
            .on(&*runtime)
            .run(&dfs_dag, &workload.query)
            .unwrap_or_else(|e| panic!("{} (dag, budgeted): {e}", workload.name));

        let label = format!("{} (dag, budget {BUDGET})", workload.name);
        assert_equivalent(&label, &dfs_rounds, &stats_rounds, &dfs_dag, &stats_dag);
        assert!(
            stats_dag.spilled_bytes() > 0,
            "{label}: a {BUDGET}-byte budget must force spilling"
        );
        assert!(
            runtime.budget().peak() <= BUDGET,
            "{label}: tracked peak {} exceeded the budget",
            runtime.budget().peak()
        );
    }
}

#[test]
fn placement_policies_match_round_barrier_on_every_preset() {
    // The ISSUE-4 acceptance matrix: all three placement policies ×
    // both executors × {unlimited, tiny budget}, on every datagen
    // preset — byte-identical relations and identical non-timing
    // statistics versus the round barrier. Placement reorders only
    // ready jobs, so nothing observable may change.
    const BUDGET: u64 = 4096;
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(120).database(11);

        let dfs_rounds = SimDfs::from_database(&db);
        let stats_rounds = engine(None, ExecutorKind::Simulated)
            .evaluate(&dfs_rounds, &workload.query)
            .unwrap_or_else(|e| panic!("{} (rounds): {e}", workload.name));
        assert!(
            stats_rounds.predicted_net_time.is_none(),
            "the barrier path has no DAG to predict over"
        );

        for policy in PlacementPolicy::ALL {
            for executor in [
                ExecutorKind::Simulated,
                ExecutorKind::Parallel { threads: 2 },
            ] {
                for budget in [None, Some(BUDGET)] {
                    let scheduler = Some(SchedulerConfig {
                        max_concurrent_jobs: 3,
                        placement: policy,
                        mem_budget: budget
                            .map(gumbo::mr::MemBudget::bytes)
                            .unwrap_or(gumbo::mr::MemBudget::UNLIMITED),
                        ..SchedulerConfig::default()
                    });
                    let dfs_dag = SimDfs::from_database(&db);
                    let stats_dag = engine(scheduler, executor)
                        .evaluate(&dfs_dag, &workload.query)
                        .unwrap_or_else(|e| {
                            panic!("{} ({} {:?}): {e}", workload.name, policy.label(), executor)
                        });
                    let label = format!(
                        "{} (policy {}, executor {}, budget {budget:?})",
                        workload.name,
                        policy.label(),
                        executor.label(),
                    );
                    assert_equivalent(&label, &dfs_rounds, &stats_rounds, &dfs_dag, &stats_dag);
                    assert!(
                        stats_dag.predicted_net_time.is_some(),
                        "{label}: scheduled runs report a predicted DAG net time"
                    );
                }
            }
        }
    }
}

#[test]
fn predicted_net_time_is_policy_invariant_and_positive() {
    // The prediction is deterministic list scheduling over the job DAG
    // with policy-independent tie-breaking: every placement policy must
    // report exactly the same number for the same program.
    let workload = queries::c1().with_tuples(200);
    let db = workload.spec.database(5);
    let mut predictions = Vec::new();
    for policy in PlacementPolicy::ALL {
        let scheduler = Some(SchedulerConfig {
            max_concurrent_jobs: 4,
            placement: policy,
            ..SchedulerConfig::default()
        });
        let dfs = SimDfs::from_database(&db);
        let stats = engine(scheduler, ExecutorKind::Simulated)
            .evaluate(&dfs, &workload.query)
            .unwrap();
        let predicted = stats.predicted_net_time.unwrap();
        assert!(predicted > 0.0, "{}: {predicted}", policy.label());
        predictions.push(predicted);
    }
    for p in &predictions[1..] {
        assert!((p - predictions[0]).abs() < 1e-9, "{predictions:?}");
    }
}

#[test]
fn dag_scheduler_composes_with_parallel_runtime() {
    // The scheduler supplies inter-job concurrency while each job's own
    // map/shuffle/reduce fans out on the parallel runtime — stats must
    // still be identical to plain round-barrier simulated execution.
    let workload = queries::a3().with_tuples(300);
    let db = workload.spec.database(7);

    let dfs_rounds = SimDfs::from_database(&db);
    let stats_rounds = engine(None, ExecutorKind::Simulated)
        .evaluate(&dfs_rounds, &workload.query)
        .unwrap();

    let dfs_dag = SimDfs::from_database(&db);
    let stats_dag = engine(
        Some(SchedulerConfig {
            max_concurrent_jobs: 4,
            threads_per_job: 2,
            ..SchedulerConfig::default()
        }),
        ExecutorKind::Parallel { threads: 0 },
    )
    .evaluate(&dfs_dag, &workload.query)
    .unwrap();

    assert_equivalent(
        "A3 (parallel runtime)",
        &dfs_rounds,
        &stats_rounds,
        &dfs_dag,
        &stats_dag,
    );
}

#[test]
fn dag_scheduler_matches_naive_reference_on_c2() {
    // Independent ground truth for a nested program: the scheduled path
    // agrees with direct SGF semantics, not just with the simulator.
    let workload = queries::c2().with_tuples(250);
    let db = workload.spec.database(3);
    let expected = NaiveEvaluator::new()
        .evaluate_sgf_all(&workload.query, &db)
        .unwrap();

    let dfs = SimDfs::from_database(&db);
    engine(Some(SchedulerConfig::default()), ExecutorKind::Simulated)
        .evaluate(&dfs, &workload.query)
        .unwrap();
    for q in workload.query.queries() {
        assert_eq!(
            dfs.peek(q.output()).unwrap().as_ref(),
            expected
                .relation(q.output())
                .expect("naive computed all outputs"),
        );
    }
}
