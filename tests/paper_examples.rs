//! Every worked example of the paper, end to end.

use gumbo::prelude::*;

fn db(facts: &[(&str, &[i64])]) -> Database {
    let mut db = Database::new();
    for (rel, t) in facts {
        db.insert_fact(Fact::new(*rel, Tuple::from_ints(t)))
            .unwrap();
    }
    db
}

fn eval_all_strategies(query: &SgfQuery, database: &Database) -> Relation {
    use gumbo::baselines::{greedy_engine, one_round_engine, par_engine, sequnit_engine};
    let expected = NaiveEvaluator::new().evaluate_sgf(query, database).unwrap();
    let cfg = EngineConfig::unscaled();
    for (name, engine) in [
        ("greedy", greedy_engine(cfg)),
        ("one_round", one_round_engine(cfg)),
        ("par", par_engine(cfg)),
        ("sequnit", sequnit_engine(cfg)),
    ] {
        let dfs = SimDfs::from_database(database);
        let (_, got) = engine.eval().run_with_output(&dfs, query).unwrap();
        assert_eq!(got, expected, "strategy {name}");
    }
    expected
}

#[test]
fn intro_query_section1() {
    let q =
        parse_program("Z := SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);")
            .unwrap();
    let d = db(&[
        ("R", &[1, 2]),
        ("R", &[3, 4]),
        ("S", &[2, 1]),
        ("T", &[1, 5]),
        ("T", &[3, 5]),
    ]);
    let out = eval_all_strategies(&q, &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[1, 2])));
}

#[test]
fn example1_intersection_difference_semijoin_antijoin() {
    let d = db(&[("R", &[1, 5]), ("R", &[2, 6]), ("S", &[5, 9])]);
    // Semi-join Z3 and anti-join Z4 from Example 1.
    let z3 = parse_program("Z3 := SELECT (x, y) FROM R(x, y) WHERE S(y, z);").unwrap();
    let out = eval_all_strategies(&z3, &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[1, 5])));

    let z4 = parse_program("Z4 := SELECT (x, y) FROM R(x, y) WHERE NOT S(y, z);").unwrap();
    let out = eval_all_strategies(&z4, &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[2, 6])));
}

#[test]
fn example1_xor_query_z5() {
    let q = parse_program(
        "Z5 := SELECT (x, y) FROM R(x, y, 4) \
         WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));",
    )
    .unwrap();
    let d = db(&[
        ("R", &[7, 8, 4]), // S(1,7) holds, S(8,10) doesn't -> in
        ("R", &[5, 6, 4]), // S(1,5) holds AND S(6,10) holds -> out (xor)
        ("R", &[9, 2, 4]), // neither -> out
        ("R", &[7, 8, 3]), // wrong guard constant -> out
        ("S", &[1, 7]),
        ("S", &[1, 5]),
        ("S", &[6, 10]),
    ]);
    let out = eval_all_strategies(&q, &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[7, 8])));
}

#[test]
fn example1_star_semijoin_z6() {
    let q = parse_program("Z6 := SELECT (x1, x2) FROM R(x1, x2) WHERE S(x1, y1) AND S(x2, y2);")
        .unwrap();
    let d = db(&[
        ("R", &[1, 2]),
        ("R", &[1, 3]),
        ("S", &[1, 0]),
        ("S", &[2, 0]),
    ]);
    let out = eval_all_strategies(&q, &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[1, 2])));
}

#[test]
fn example2_bookstore() {
    // String constants, exactly as printed in the paper.
    let q = parse_program(
        r#"Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
               WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
           Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);"#,
    )
    .unwrap();
    let mut d = Database::new();
    let bad = || Value::str("bad");
    let good = || Value::str("good");
    for (rel, ttl, aut, rating) in [
        ("Amaz", 10, 1, bad()),
        ("BN", 10, 1, bad()),
        ("BD", 10, 1, bad()),
        ("Amaz", 11, 2, bad()),
        ("BN", 11, 2, good()),
    ] {
        d.insert_fact(Fact::new(
            rel,
            Tuple::new(vec![Value::Int(ttl), Value::Int(aut), rating]),
        ))
        .unwrap();
    }
    d.insert_fact(Fact::new("Upcoming", Tuple::from_ints(&[100, 1])))
        .unwrap();
    d.insert_fact(Fact::new("Upcoming", Tuple::from_ints(&[101, 2])))
        .unwrap();
    // BD missing entirely for author 2: Z1 = {1}.
    d.insert_fact(Fact::new(
        "BD",
        Tuple::new(vec![Value::Int(99), Value::Int(9), good()]),
    ))
    .unwrap();
    let out = eval_all_strategies(&q, &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[101, 2])));
}

#[test]
fn example3_single_semijoin_messages() {
    // Z := π_x(R(x,z) ⋉ S(z,y)) on {R(1,2), R(4,5), S(2,3)} = {Z(1)}.
    let q = parse_program("Z := SELECT x FROM R(x, z) WHERE S(z, y);").unwrap();
    let d = db(&[("R", &[1, 2]), ("R", &[4, 5]), ("S", &[2, 3])]);
    let out = eval_all_strategies(&q, &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[1])));
}

#[test]
fn example4_all_figure2_plans() {
    let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));")
        .unwrap();
    let d = db(&[
        ("R", &[1, 10]),
        ("R", &[2, 20]),
        ("R", &[3, 30]),
        ("S", &[1, 0]),
        ("S", &[3, 0]),
        ("T", &[10]),
        ("U", &[3]),
    ]);
    let expected = NaiveEvaluator::new().evaluate_bsgf(&q, &d).unwrap();
    let ctx = QueryContext::new(vec![q]).unwrap();
    let engine = Engine::new(EngineConfig::unscaled());
    for groups in [
        vec![vec![0], vec![1], vec![2]],
        vec![vec![0, 2], vec![1]],
        vec![vec![0, 1, 2]],
    ] {
        for mode in [PayloadMode::Full, PayloadMode::Reference] {
            let plan = BsgfSetPlan::two_round(groups.clone(), mode, JobConfig::default());
            let program = plan.build_program(&ctx).unwrap();
            let dfs = SimDfs::from_database(&d);
            engine.execute(&dfs, &program).unwrap();
            assert_eq!(dfs.peek(&"Z".into()).unwrap().as_ref(), &expected);
        }
    }
}

#[test]
fn example5_greedy_sort_matches_paper() {
    let q = parse_program(
        "Z1 := SELECT (x, y) FROM R1(x, y) WHERE S(x);\n\
         Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(x);\n\
         Z3 := SELECT (x, y) FROM Z2(x, y) WHERE U(x);\n\
         Z4 := SELECT (x, y) FROM R2(x, y) WHERE T(x);\n\
         Z5 := SELECT (x, y) FROM Z3(x, y) WHERE Z4(x, x);",
    )
    .unwrap();
    // Greedy-SGF groups Q4 with Q2 (shared relation T) — the paper's
    // second listed sort.
    let sort = gumbo::core::planner::greedy_sgf_sort(&q);
    assert_eq!(sort, vec![vec![0], vec![1, 3], vec![2], vec![4]]);

    // And evaluation under that sort is correct.
    let d = db(&[
        ("R1", &[1, 2]),
        ("R1", &[3, 4]),
        ("R2", &[1, 1]),
        ("S", &[1]),
        ("S", &[3]),
        ("T", &[1]),
        ("T", &[3]),
        ("U", &[1]),
        ("U", &[3]),
    ]);
    let expected = NaiveEvaluator::new().evaluate_sgf(&q, &d).unwrap();
    let engine = GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default());
    let dfs = SimDfs::from_database(&d);
    let stats = engine.eval().with_sort(&sort).run(&dfs, &q).unwrap();
    assert_eq!(dfs.peek(&"Z5".into()).unwrap().as_ref(), &expected);
    // 4 groups of fused single-semijoin queries.
    assert_eq!(stats.num_rounds(), 4);
}

#[test]
fn appendix_a_cost_constants() {
    // With the Appendix A constants (all zero but hr = 1, no overhead),
    // a job's cost is exactly its input MB — the reduction's premise.
    let constants = CostConstants::appendix_a();
    let profile = gumbo::mr::JobProfile {
        partitions: vec![gumbo::mr::InputPartition {
            label: "Si".into(),
            input: ByteSize::mb(37),
            map_output: ByteSize::mb(37),
            records_out: 0,
            mappers: 1,
        }],
        reducers: 1,
        output: ByteSize::mb(37),
    };
    let c = gumbo::mr::job_cost(CostModelKind::Gumbo, &constants, &profile);
    assert!((c - 37.0).abs() < 1e-9);
}
