//! Service-level equivalence: answers streamed by the resident query
//! service (`gumbo::service`) must be **byte-identical** to direct
//! engine evaluation, for every query preset, both storage backends,
//! both data planes, and under concurrent multi-tenant load.
//!
//! Also covered here: the drain invariant (a shutdown mid-workload
//! loses zero accepted submissions), restart durability for a
//! file-backed service, and the per-submission timestamp chain
//! (`queued_ns <= admitted_ns <= completed_ns`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gumbo::datagen::queries;
use gumbo::prelude::*;

const TUPLES: usize = 150;
const SEED: u64 = 7;

fn presets() -> Vec<gumbo::datagen::Workload> {
    let mut all = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    all.extend(queries::figure6());
    all
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("gumbo-svc-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// The engine both sides of every comparison use: DAG scheduler (the
/// service's production path), selectable data plane.
fn engine(plane: DataPlane) -> GumboEngine {
    GumboEngine::with_executor(
        EngineConfig {
            data_plane: plane,
            ..EngineConfig::default()
        },
        ExecutorKind::Simulated,
        EvalOptions {
            scheduler: Some(SchedulerConfig {
                max_concurrent_jobs: 3,
                ..SchedulerConfig::default()
            }),
            ..EvalOptions::default()
        },
    )
}

/// Direct evaluation: every output relation (intermediates included),
/// in the query's output order.
fn direct_answers(db: &Database, query: &SgfQuery, plane: DataPlane) -> Vec<Relation> {
    let dfs = SimDfs::from_database(db);
    engine(plane).evaluate(&dfs, query).unwrap();
    query
        .output_names()
        .iter()
        .map(|name| (*dfs.peek(name).unwrap()).clone())
        .collect()
}

fn start_server(dfs: Arc<dyn Dfs>, plane: DataPlane, config: ServeConfig) -> ServerHandle {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    serve(listener, dfs, engine(plane), config).unwrap()
}

fn assert_same_relations(label: &str, got: &[Relation], want: &[Relation]) {
    assert_eq!(
        got.len(),
        want.len(),
        "{label}: streamed {} relations, direct evaluation produced {}",
        got.len(),
        want.len(),
    );
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.name(), w.name(), "{label}: relation order differs");
        assert_eq!(
            g,
            w,
            "{label}: relation {} differs from direct eval",
            g.name()
        );
    }
}

/// Every preset, three concurrent tenants each: streamed answers equal
/// direct evaluation, and the reports carry a monotonic timestamp chain.
#[test]
fn streamed_answers_match_direct_evaluation_for_every_preset() {
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(TUPLES).database(SEED);
        let want = direct_answers(&db, &workload.query, DataPlane::default());

        let dfs: Arc<dyn Dfs> = Arc::new(SimDfs::from_database(&db));
        let handle = start_server(dfs, DataPlane::default(), ServeConfig::default());
        let addr = handle.addr();
        let sgf = workload.query.to_string();

        std::thread::scope(|scope| {
            for t in 0..3 {
                let sgf = &sgf;
                let want = &want;
                let name = &workload.name;
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).unwrap();
                    let reply = client
                        .query(&format!("tenant-{t}"), None, sgf)
                        .unwrap_or_else(|e| panic!("{name} tenant-{t}: {e}"));
                    assert_same_relations(&format!("{name} tenant-{t}"), &reply.relations, want);
                    let queued = reply.queued_ns().unwrap();
                    let admitted = reply.admitted_ns().unwrap();
                    let completed = reply.completed_ns().unwrap();
                    assert!(
                        queued <= admitted && admitted <= completed,
                        "{name}: timestamps not monotonic: {queued} {admitted} {completed}"
                    );
                    assert_eq!(reply.queue_wait_ns().unwrap(), admitted - queued);
                });
            }
        });

        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.accepted, 3, "{}: accepted", workload.name);
        assert_eq!(summary.completed, 3, "{}: completed", workload.name);
        assert_eq!(summary.connections, 3, "{}: connections", workload.name);
    }
}

/// Backend × data-plane matrix on representative presets (one flat, one
/// nested): the service serves byte-identical answers from the durable
/// file store and from both shuffle planes.
#[test]
fn both_backends_and_planes_serve_identical_answers() {
    for workload in [queries::a1(), queries::c1()] {
        let db = workload.spec.clone().with_tuples(TUPLES).database(SEED);
        // One reference: answers are backend- and plane-invariant.
        let want = direct_answers(&db, &workload.query, DataPlane::Pairs);
        let sgf = workload.query.to_string();

        for backend in ["sim", "file"] {
            for plane in [DataPlane::Pairs, DataPlane::Columnar] {
                let label = format!("{} ({backend}, {})", workload.name, plane.label());
                let root = temp_root(&format!("{}-{backend}-{}", workload.name, plane.label()));
                let dfs: Arc<dyn Dfs> = match backend {
                    "sim" => Arc::new(SimDfs::from_database(&db)),
                    _ => Arc::new(FileDfs::from_database(&root, DEFAULT_CACHE_BYTES, &db).unwrap()),
                };
                let handle = start_server(dfs, plane, ServeConfig::default());
                let mut client = ServiceClient::connect(handle.addr()).unwrap();
                let reply = client
                    .query("matrix", None, &sgf)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_same_relations(&label, &reply.relations, &want);
                let (accepted, completed) = client.shutdown().unwrap();
                assert_eq!((accepted, completed), (1, 1), "{label}");
                handle.join();
                let _ = std::fs::remove_dir_all(&root);
            }
        }
    }
}

/// The drain invariant: shut the server down while a backlog is queued
/// behind a single dispatcher — every accepted submission still
/// completes and streams its full reply. Zero lost work.
#[test]
fn drain_mid_workload_completes_every_accepted_submission() {
    const CLIENTS: usize = 6;
    let workload = queries::a2();
    let db = workload.spec.clone().with_tuples(TUPLES).database(SEED);
    let want = direct_answers(&db, &workload.query, DataPlane::default());

    let dfs: Arc<dyn Dfs> = Arc::new(SimDfs::from_database(&db));
    // One dispatcher: submissions queue up behind each other, so the
    // shutdown below genuinely races a non-empty backlog.
    let handle = start_server(
        dfs,
        DataPlane::default(),
        ServeConfig {
            max_in_flight: 1,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let sgf = workload.query.to_string();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let sgf = &sgf;
                let want = &want;
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).unwrap();
                    let reply = client
                        .query(&format!("tenant-{}", t % 3), None, sgf)
                        .unwrap_or_else(|e| panic!("client {t}: {e}"));
                    assert_same_relations(&format!("client {t}"), &reply.relations, want);
                })
            })
            .collect();

        // Wait until the queue has accepted the full workload, then pull
        // the plug while most of it is still pending.
        let deadline = Instant::now() + Duration::from_secs(30);
        while handle.accepted() < CLIENTS as u64 {
            assert!(Instant::now() < deadline, "submissions never all arrived");
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.shutdown();

        for w in workers {
            w.join().unwrap();
        }
    });

    let summary = handle.join();
    assert_eq!(summary.accepted, CLIENTS as u64);
    assert_eq!(
        summary.completed, summary.accepted,
        "drain lost accepted work: {summary:?}"
    );
}

/// Restart durability: a file-backed service is shut down, the root
/// reopened cold, and a fresh server must serve the exact same answers
/// from the durable state alone.
#[test]
fn file_backed_service_survives_restart() {
    let workload = queries::a3();
    let db = workload.spec.clone().with_tuples(TUPLES).database(SEED);
    let root = temp_root("restart");
    let sgf = workload.query.to_string();

    let first = {
        let dfs: Arc<dyn Dfs> =
            Arc::new(FileDfs::from_database(&root, DEFAULT_CACHE_BYTES, &db).unwrap());
        let handle = start_server(dfs, DataPlane::default(), ServeConfig::default());
        let mut client = ServiceClient::connect(handle.addr()).unwrap();
        let reply = client.query("durable", None, &sgf).unwrap();
        client.shutdown().unwrap();
        handle.join();
        reply.relations
    }; // server gone; only the on-disk state survives

    assert!(
        root.join("MANIFEST").is_file(),
        "drained file-backed server must leave a MANIFEST"
    );

    // Cold reopen: no database reload — the durable store alone must
    // already hold the base relations and the committed answers.
    let reopened: Arc<dyn Dfs> = Arc::new(FileDfs::open(&root, DEFAULT_CACHE_BYTES).unwrap());
    for rel in &first {
        assert_eq!(
            reopened.peek(rel.name()).unwrap().as_ref(),
            rel,
            "relation {} changed across restart",
            rel.name(),
        );
    }
    let handle = start_server(reopened, DataPlane::default(), ServeConfig::default());
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    let reply = client.query("durable", None, &sgf).unwrap();
    assert_same_relations("after restart", &reply.relations, &first);
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// Protocol edges that don't deserve their own server: ping, a bad SGF
/// program, and a submission refused after the drain began.
#[test]
fn protocol_errors_and_liveness() {
    let workload = queries::a1();
    let db = workload.spec.clone().with_tuples(50).database(SEED);
    let dfs: Arc<dyn Dfs> = Arc::new(SimDfs::from_database(&db));
    let handle = start_server(dfs, DataPlane::default(), ServeConfig::default());
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    client.ping().unwrap();
    let err = client.query("edge", None, "THIS IS NOT SGF").unwrap_err();
    assert!(
        matches!(err, ServiceError::Remote(ref m) if m.contains("bad SGF")),
        "expected a remote parse error, got {err}"
    );
    // The connection survives a rejected program.
    client.ping().unwrap();

    handle.shutdown();
    let err = client
        .query("edge", None, &workload.query.to_string())
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::Remote(ref m) if m.contains("draining")),
        "expected a draining refusal, got {err}"
    );
    drop(client);
    let summary = handle.join();
    assert_eq!(summary.accepted, 0);
    assert_eq!(summary.completed, 0);
}
