//! Property-based equivalence: every evaluation strategy must agree with
//! the naive reference evaluator on randomized queries and databases.

use proptest::prelude::*;

use gumbo::baselines::{greedy_engine, one_round_engine, par_engine, HiveSim, PigSim, SeqStrategy};
use gumbo::prelude::*;

const GUARD_VARS: [&str; 4] = ["x", "y", "z", "w"];
const COND_RELS: [&str; 4] = ["S", "T", "U", "V"];

/// A generated conditional atom: relation index, variable indices, and an
/// optional trailing fresh (local existential) variable.
#[derive(Debug, Clone)]
struct GenAtom {
    rel: usize,
    vars: Vec<usize>,
    local: bool,
}

#[derive(Debug, Clone)]
enum GenCond {
    Atom(GenAtom),
    Not(Box<GenCond>),
    And(Box<GenCond>, Box<GenCond>),
    Or(Box<GenCond>, Box<GenCond>),
}

fn atom_strategy() -> impl Strategy<Value = GenAtom> {
    (
        0..COND_RELS.len(),
        proptest::collection::vec(0..GUARD_VARS.len(), 1..3),
        any::<bool>(),
    )
        .prop_map(|(rel, vars, local)| GenAtom { rel, vars, local })
}

fn cond_strategy() -> impl Strategy<Value = GenCond> {
    let leaf = atom_strategy().prop_map(GenCond::Atom);
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|c| GenCond::Not(Box::new(c))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenCond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| GenCond::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn render_atom(a: &GenAtom, counter: &mut usize) -> String {
    let mut args: Vec<String> = a.vars.iter().map(|&v| GUARD_VARS[v].to_string()).collect();
    if a.local {
        *counter += 1;
        args.push(format!("q{counter}"));
    }
    format!("{}({})", COND_RELS[a.rel], args.join(", "))
}

fn render_cond(c: &GenCond, counter: &mut usize) -> String {
    match c {
        GenCond::Atom(a) => render_atom(a, counter),
        GenCond::Not(inner) => format!("(NOT {})", render_cond(inner, counter)),
        GenCond::And(l, r) => {
            format!(
                "({} AND {})",
                render_cond(l, counter),
                render_cond(r, counter)
            )
        }
        GenCond::Or(l, r) => {
            format!(
                "({} OR {})",
                render_cond(l, counter),
                render_cond(r, counter)
            )
        }
    }
}

/// Arities used for each conditional relation in a generated scenario:
/// derived from the first occurrence of each relation in the condition.
fn collect_arities(c: &GenCond, arities: &mut [Option<usize>; 4]) {
    match c {
        GenCond::Atom(a) => {
            let arity = a.vars.len() + usize::from(a.local);
            if arities[a.rel].is_none() {
                arities[a.rel] = Some(arity);
            }
        }
        GenCond::Not(x) => collect_arities(x, arities),
        GenCond::And(l, r) | GenCond::Or(l, r) => {
            collect_arities(l, arities);
            collect_arities(r, arities);
        }
    }
}

/// Normalize a condition so that every occurrence of a relation uses the
/// first-seen arity (re-truncating or padding variable lists).
fn normalize(c: &GenCond, arities: &[Option<usize>; 4]) -> GenCond {
    match c {
        GenCond::Atom(a) => {
            let want = arities[a.rel].expect("collected");
            let mut vars = a.vars.clone();
            let mut local = a.local;
            // Shrink or grow the argument list to the canonical arity.
            loop {
                let have = vars.len() + usize::from(local);
                if have == want {
                    break;
                }
                if have > want {
                    if local {
                        local = false;
                    } else {
                        vars.pop();
                    }
                } else {
                    vars.push(vars.len() % GUARD_VARS.len());
                }
            }
            GenCond::Atom(GenAtom {
                rel: a.rel,
                vars,
                local,
            })
        }
        GenCond::Not(x) => GenCond::Not(Box::new(normalize(x, arities))),
        GenCond::And(l, r) => GenCond::And(
            Box::new(normalize(l, arities)),
            Box::new(normalize(r, arities)),
        ),
        GenCond::Or(l, r) => GenCond::Or(
            Box::new(normalize(l, arities)),
            Box::new(normalize(r, arities)),
        ),
    }
}

fn random_db(seed: u64, arities: &[Option<usize>; 4]) -> Database {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut guard = Relation::new("R", 4);
    for _ in 0..40 {
        let t: Vec<i64> = (0..4).map(|_| rng.gen_range(0..8)).collect();
        guard.insert(Tuple::from_ints(&t)).unwrap();
    }
    db.add_relation(guard);
    for (i, name) in COND_RELS.iter().enumerate() {
        let arity = arities[i].unwrap_or(1);
        let mut rel = Relation::new(*name, arity);
        for _ in 0..25 {
            let t: Vec<i64> = (0..arity).map(|_| rng.gen_range(0..8)).collect();
            rel.insert(Tuple::from_ints(&t)).unwrap();
        }
        db.add_relation(rel);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized BSGF queries: every strategy agrees with the naive
    /// evaluator. Guardedness holds by construction: conditional atoms use
    /// guard variables plus at-most-one fresh local variable each.
    #[test]
    fn strategies_agree_with_naive(cond in cond_strategy(), seed in 0u64..500) {
        let mut arities: [Option<usize>; 4] = [None, None, None, None];
        collect_arities(&cond, &mut arities);
        let cond = normalize(&cond, &arities);
        let mut counter = 0usize;
        let text = format!(
            "Zout := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE {};",
            render_cond(&cond, &mut counter)
        );
        let query = parse_program(&text).unwrap();
        let db = random_db(seed, &arities);
        let expected = NaiveEvaluator::new().evaluate_sgf(&query, &db).unwrap();
        let cfg = EngineConfig::unscaled();

        for (name, stats_and_result) in [
            ("greedy", {
                let dfs = SimDfs::from_database(&db);
                greedy_engine(cfg).evaluate(&dfs, &query).map(|_| {
                    dfs.peek(&"Zout".into()).unwrap().as_ref().clone()
                })
            }),
            ("one_round", {
                let dfs = SimDfs::from_database(&db);
                one_round_engine(cfg).evaluate(&dfs, &query).map(|_| {
                    dfs.peek(&"Zout".into()).unwrap().as_ref().clone()
                })
            }),
            ("par", {
                let dfs = SimDfs::from_database(&db);
                par_engine(cfg).evaluate(&dfs, &query).map(|_| {
                    dfs.peek(&"Zout".into()).unwrap().as_ref().clone()
                })
            }),
        ] {
            let got = stats_and_result.unwrap();
            prop_assert_eq!(&got, &expected, "strategy {} on {}", name, &text);
        }

        // Baseline system simulators agree too.
        let queries = query.queries().to_vec();
        for name in ["hpar", "hpars", "ppar"] {
            let dfs = SimDfs::from_database(&db);
            let engine = Engine::new(cfg);
            match name {
                "hpar" => HiveSim::hpar().evaluate(&engine, &dfs, &queries).map(|_| ()),
                "hpars" => HiveSim::hpars().evaluate(&engine, &dfs, &queries).map(|_| ()),
                _ => PigSim::ppar().evaluate(&engine, &dfs, &queries).map(|_| ()),
            }
            .unwrap();
            let got = dfs.peek(&"Zout".into()).unwrap();
            prop_assert_eq!(got.as_ref(), &expected, "system {} on {}", name, &text);
        }

        // SEQ where the condition is in DNF (skip otherwise).
        let dfs = SimDfs::from_database(&db);
        if SeqStrategy::default()
            .evaluate(&Engine::new(cfg), &dfs, &queries)
            .is_ok()
        {
            let got = dfs.peek(&"Zout".into()).unwrap();
            prop_assert_eq!(got.as_ref(), &expected, "SEQ on {}", &text);
        }
    }
}
