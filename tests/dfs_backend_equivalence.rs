//! Cross-backend equivalence: the durable file-segment DFS must be
//! observationally identical to the in-memory simulated DFS.
//!
//! For every `datagen` query preset (A1–A5, B1/B2 and the nested C1–C4
//! programs of Figure 6), a single reference run — sim backend, pair
//! plane, round barrier — is compared against **both** backends across
//!
//! `{sim, file} × {round barrier, DAG scheduler} × {pairs, columnar}`
//!
//! requiring byte-identical answer relations (every file left in the
//! DFS), identical logical I/O meters (`bytes_read` / `bytes_written`
//! are charged per *logical* relation size, so they must not depend on
//! the backend) and exact agreement on the paper's four metrics.
//!
//! Two more properties only the file backend has are covered here too:
//! restart (a reopened store serves the exact relations a previous
//! process committed) and cache pressure (a block cache far smaller
//! than the input evicts — observably — without changing any answer).

use std::path::PathBuf;

use gumbo::datagen::queries;
use gumbo::prelude::*;

const TUPLES: usize = 250;
const SEED: u64 = 7;

fn presets() -> Vec<gumbo::datagen::Workload> {
    let mut all = vec![
        queries::a1(),
        queries::a2(),
        queries::a3(),
        queries::a4(),
        queries::a5(),
        queries::b1(),
        queries::b2(),
    ];
    all.extend(queries::figure6());
    all
}

/// A fresh, empty temp root for one file-backed run.
fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("gumbo-dfs-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn engine(plane: DataPlane, dag: bool) -> GumboEngine {
    let mut options = EvalOptions::default();
    if dag {
        options.scheduler = Some(SchedulerConfig {
            max_concurrent_jobs: 3,
            ..SchedulerConfig::default()
        });
    }
    GumboEngine::with_executor(
        EngineConfig {
            scale: 5_000,
            data_plane: plane,
            ..EngineConfig::default()
        },
        ExecutorKind::Simulated,
        options,
    )
}

/// Run every (backend, plane) combination on one scheduling path and
/// compare each against the sim-backend reference run.
fn check_matrix(dag: bool) {
    for workload in presets() {
        let db = workload.spec.clone().with_tuples(TUPLES).database(SEED);

        let dfs_ref = SimDfs::from_database(&db);
        let stats_ref = engine(DataPlane::Pairs, false)
            .evaluate(&dfs_ref, &workload.query)
            .unwrap_or_else(|e| panic!("{} (reference): {e}", workload.name));

        for backend in ["sim", "file"] {
            for plane in [DataPlane::Pairs, DataPlane::Columnar] {
                let label = format!(
                    "{} ({backend}, {}, {})",
                    workload.name,
                    plane.label(),
                    if dag { "dag" } else { "rounds" },
                );
                let root = temp_root(&format!(
                    "{}-{backend}-{}-{dag}",
                    workload.name,
                    plane.label()
                ));
                let dfs: Box<dyn Dfs> = match backend {
                    "sim" => Box::new(SimDfs::from_database(&db)),
                    _ => Box::new(
                        FileDfs::from_database(&root, DEFAULT_CACHE_BYTES, &db)
                            .unwrap_or_else(|e| panic!("{label}: {e}")),
                    ),
                };
                let stats = engine(plane, dag)
                    .evaluate(&*dfs, &workload.query)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));

                gumbo::sched::assert_identical_dfs(&label, &dfs_ref, &*dfs);
                gumbo::sched::assert_identical_stats(&label, &stats_ref, &stats);
                drop(dfs);
                let _ = std::fs::remove_dir_all(&root);
            }
        }
    }
}

#[test]
fn both_backends_agree_on_every_preset_under_the_round_barrier() {
    check_matrix(false);
}

#[test]
fn both_backends_agree_on_every_preset_under_the_dag_scheduler() {
    check_matrix(true);
}

/// Durability: evaluate into a file store, drop the handle, reopen the
/// same root in a fresh instance and find the exact same relations —
/// inputs, intermediates and answers — with zeroed I/O counters.
#[test]
fn file_dfs_restarts_from_durable_state() {
    let workload = queries::a3();
    let db = workload.spec.clone().with_tuples(TUPLES).database(SEED);
    let root = temp_root("restart");

    let snapshot: Vec<(gumbo::common::RelationName, std::sync::Arc<Relation>)> = {
        let dfs = FileDfs::from_database(&root, DEFAULT_CACHE_BYTES, &db).unwrap();
        engine(DataPlane::default(), false)
            .evaluate(&dfs, &workload.query)
            .unwrap();
        dfs.flush().unwrap();
        dfs.file_names()
            .into_iter()
            .map(|name| {
                let rel = dfs.peek(&name).unwrap();
                (name, rel)
            })
            .collect()
    }; // handle dropped: only the on-disk state survives

    let reopened = FileDfs::open(&root, DEFAULT_CACHE_BYTES).unwrap();
    assert_eq!(
        reopened.file_names().len(),
        snapshot.len(),
        "reopened store lost or grew relations"
    );
    for (name, expected) in &snapshot {
        let got = reopened.peek(name).unwrap();
        assert_eq!(&got, expected, "relation {name} changed across restart");
        assert_eq!(
            got.estimated_bytes(),
            expected.estimated_bytes(),
            "relation {name} byte size changed across restart"
        );
    }
    assert_eq!(reopened.bytes_read().as_bytes(), 0);
    assert_eq!(reopened.bytes_written().as_bytes(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// Cache pressure: a block cache far smaller than the working set must
/// evict (the counters prove it) while every answer and meter stays
/// byte-identical to the in-memory backend.
#[test]
fn tiny_block_cache_evicts_without_changing_answers() {
    let workload = queries::a1();
    let db = workload.spec.clone().with_tuples(400).database(SEED);

    let dfs_sim = SimDfs::from_database(&db);
    let stats_sim = engine(DataPlane::default(), false)
        .evaluate(&dfs_sim, &workload.query)
        .unwrap();

    let root = temp_root("evict");
    // 2 KiB holds less than one decoded frame of most relations here.
    let dfs_file = FileDfs::from_database(&root, 2048, &db).unwrap();
    let stats_file = engine(DataPlane::default(), false)
        .evaluate(&dfs_file, &workload.query)
        .unwrap();

    let cache = dfs_file.cache_stats();
    assert!(
        cache.evictions > 0,
        "a 2 KiB cache must evict on this workload (stats: {cache:?})"
    );
    assert!(
        cache.cached_bytes <= cache.capacity_bytes.max(cache.cached_bytes),
        "cache accounting went negative: {cache:?}"
    );
    gumbo::sched::assert_identical_dfs("tiny cache", &dfs_sim, &dfs_file);
    gumbo::sched::assert_identical_stats("tiny cache", &stats_sim, &stats_file);
    let _ = std::fs::remove_dir_all(&root);
}
