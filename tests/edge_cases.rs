//! Edge cases that stress unusual-but-legal corners of the SGF fragment.

use gumbo::baselines::{greedy_engine, par_engine};
use gumbo::prelude::*;

fn db(facts: &[(&str, &[i64])]) -> Database {
    let mut db = Database::new();
    for (rel, t) in facts {
        db.insert_fact(Fact::new(*rel, Tuple::from_ints(t)))
            .unwrap();
    }
    db
}

fn check(query_text: &str, d: &Database) -> Relation {
    let query = parse_program(query_text).unwrap();
    let expected = NaiveEvaluator::new().evaluate_sgf(&query, d).unwrap();
    for (name, engine) in [
        ("greedy", greedy_engine(EngineConfig::unscaled())),
        ("par", par_engine(EngineConfig::unscaled())),
        (
            "default",
            GumboEngine::new(EngineConfig::unscaled(), EvalOptions::default()),
        ),
    ] {
        let dfs = SimDfs::from_database(d);
        let (_, got) = engine.eval().run_with_output(&dfs, &query).unwrap();
        assert_eq!(got, expected, "{name} on {query_text}");
    }
    expected
}

#[test]
fn self_semijoin_guard_is_also_conditional() {
    // R appears as guard and as conditional: x s.t. some R(y, z) continues
    // from R(x, y).
    let d = db(&[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[5, 6])]);
    let out = check("Z := SELECT x FROM R(x, y) WHERE R(y, z);", &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[1])));
}

#[test]
fn self_antijoin() {
    // Sinks: R(x, y) with no outgoing edge from y.
    let d = db(&[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[5, 6])]);
    let out = check("Z := SELECT (x, y) FROM R(x, y) WHERE NOT R(y, q);", &d);
    assert_eq!(out.len(), 2); // (2,3) and (5,6)
}

#[test]
fn empty_join_key_is_nonemptiness_test() {
    // S(q) shares no variable with the guard: the condition holds for all
    // guard tuples iff S is non-empty.
    let with_s = db(&[("R", &[1]), ("R", &[2]), ("S", &[9])]);
    let out = check("Z := SELECT x FROM R(x) WHERE S(q);", &with_s);
    assert_eq!(out.len(), 2);

    let mut without_s = db(&[("R", &[1]), ("R", &[2])]);
    without_s.add_relation(Relation::new("S", 1));
    let out = check("Z := SELECT x FROM R(x) WHERE S(q);", &without_s);
    assert_eq!(out.len(), 0);

    // Negated: NOT S(q) selects everything iff S is empty.
    let out = check("Z := SELECT x FROM R(x) WHERE NOT S(q);", &without_s);
    assert_eq!(out.len(), 2);
}

#[test]
fn repeated_output_variables() {
    let d = db(&[("R", &[1, 2])]);
    let out = check("Z := SELECT (x, x, y) FROM R(x, y);", &d);
    assert!(out.contains(&Tuple::from_ints(&[1, 1, 2])));
}

#[test]
fn constant_only_conditional() {
    // S(7) is a membership test of a ground fact.
    let d = db(&[("R", &[1]), ("R", &[2]), ("S", &[7])]);
    let out = check("Z := SELECT x FROM R(x) WHERE S(7);", &d);
    assert_eq!(out.len(), 2);
    let d2 = db(&[("R", &[1]), ("S", &[8])]);
    let out = check("Z := SELECT x FROM R(x) WHERE S(7);", &d2);
    assert_eq!(out.len(), 0);
}

#[test]
fn guard_with_repeated_variable_and_constant() {
    // Guard R(x, x, 3): diagonal tuples ending in 3 only.
    let d = db(&[("R", &[1, 1, 3]), ("R", &[1, 2, 3]), ("R", &[4, 4, 5])]);
    let out = check("Z := SELECT x FROM R(x, x, 3);", &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[1])));
}

#[test]
fn empty_guard_relation() {
    let mut d = db(&[("S", &[1])]);
    d.add_relation(Relation::new("R", 2));
    let out = check("Z := SELECT x FROM R(x, y) WHERE S(x);", &d);
    assert!(out.is_empty());
}

#[test]
fn tautology_and_contradiction() {
    let d = db(&[("R", &[1]), ("S", &[1])]);
    // S(x) OR NOT S(x): always true.
    let out = check("Z := SELECT x FROM R(x) WHERE S(x) OR NOT S(x);", &d);
    assert_eq!(out.len(), 1);
    // S(x) AND NOT S(x): always false.
    let out = check("Z := SELECT x FROM R(x) WHERE S(x) AND NOT S(x);", &d);
    assert_eq!(out.len(), 0);
}

#[test]
fn deeply_nested_negations() {
    let d = db(&[("R", &[1]), ("R", &[2]), ("S", &[1])]);
    // NOT NOT S(x) ≡ S(x).
    let out = check("Z := SELECT x FROM R(x) WHERE NOT (NOT S(x));", &d);
    assert_eq!(out.len(), 1);
    assert!(out.contains(&Tuple::from_ints(&[1])));
    // NOT (S(x) OR NOT S(x)) ≡ false.
    let out = check("Z := SELECT x FROM R(x) WHERE NOT (S(x) OR NOT S(x));", &d);
    assert_eq!(out.len(), 0);
}

#[test]
fn intermediate_used_twice_downstream() {
    // Z1 feeds both Z2 and Z3; Z4 combines them.
    let d = db(&[
        ("R", &[1]),
        ("R", &[2]),
        ("R", &[3]),
        ("S", &[1]),
        ("S", &[2]),
        ("T", &[2]),
        ("U", &[1]),
    ]);
    let out = check(
        "Z1 := SELECT x FROM R(x) WHERE S(x);\n\
         Z2 := SELECT x FROM Z1(x) WHERE T(x);\n\
         Z3 := SELECT x FROM Z1(x) WHERE U(x);\n\
         Z4 := SELECT x FROM R(x) WHERE Z2(x) OR Z3(x);",
        &d,
    );
    assert_eq!(out.len(), 2);
}

#[test]
fn mixed_string_and_int_keys() {
    let mut d = Database::new();
    d.insert_fact(Fact::new(
        "R",
        Tuple::new(vec![Value::str("alice"), Value::Int(30)]),
    ))
    .unwrap();
    d.insert_fact(Fact::new(
        "R",
        Tuple::new(vec![Value::str("bob"), Value::Int(40)]),
    ))
    .unwrap();
    d.insert_fact(Fact::new("S", Tuple::new(vec![Value::str("alice")])))
        .unwrap();
    let out = check("Z := SELECT (n, a) FROM R(n, a) WHERE S(n);", &d);
    assert_eq!(out.len(), 1);
}
