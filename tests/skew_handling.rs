//! Skew handling (§6 of the paper): with heavy-hitter information, the MSJ
//! operator can salt request keys to spread a hot join key across reduce
//! groups. These tests exercise the salted MSJ variant plus the engine's
//! skew-aware wall-clock model.

use gumbo::core::msj::{build_msj_job, build_msj_job_salted};
use gumbo::core::{PayloadMode, QueryContext};
use gumbo::prelude::*;

/// A heavily skewed database: every guard tuple shares join key 7.
fn skewed_db(n: i64) -> Database {
    let mut db = Database::new();
    let mut r = Relation::new("R", 2);
    for i in 0..n {
        r.insert(Tuple::from_ints(&[i, 7])).unwrap();
    }
    db.add_relation(r);
    let mut s = Relation::new("S", 1);
    s.insert(Tuple::from_ints(&[7])).unwrap();
    s.insert(Tuple::from_ints(&[8])).unwrap();
    db.add_relation(s);
    db
}

fn ctx() -> QueryContext {
    let q = parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(y);").unwrap();
    QueryContext::new(vec![q]).unwrap()
}

fn run(salts: u32, reducers: usize) -> (SimDfs, gumbo::mr::JobStats) {
    let db = skewed_db(400);
    let dfs = SimDfs::from_database(&db);
    let config = JobConfig {
        reducer_policy: gumbo::mr::ReducerPolicy::Fixed(reducers),
        ..JobConfig::default()
    };
    let job = build_msj_job_salted(&ctx(), &[0], PayloadMode::Full, config, salts);
    let engine = Engine::new(EngineConfig::unscaled());
    let stats = engine.execute_job(&dfs, &job, 0).unwrap();
    (dfs, stats)
}

#[test]
fn salting_preserves_results() {
    let (plain_dfs, _) = run(1, 8);
    for salts in [2u32, 4, 8] {
        let (salted_dfs, _) = run(salts, 8);
        assert_eq!(
            plain_dfs.peek(&"Z#X0".into()).unwrap(),
            salted_dfs.peek(&"Z#X0".into()).unwrap(),
            "salts = {salts}"
        );
    }
}

#[test]
fn unsalted_skew_concentrates_reduce_load() {
    // All 400 requests share key 7 -> one reducer carries ~everything,
    // which the skew-aware wall-clock model exposes as a long task.
    let (_, stats) = run(1, 8);
    let max = stats
        .reduce_task_durations
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    let sum: f64 = stats.reduce_task_durations.iter().sum();
    assert!(
        max > 0.9 * sum,
        "expected one dominant reduce task, got max {max} of total {sum}"
    );
}

#[test]
fn salting_spreads_reduce_load() {
    let (_, plain) = run(1, 8);
    let (_, salted) = run(8, 8);
    let max_plain = plain
        .reduce_task_durations
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    let max_salted = salted
        .reduce_task_durations
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    // The makespan-relevant quantity (the longest reduce task) must drop
    // substantially; the totals stay comparable (asserts are tiny).
    assert!(
        max_salted < 0.6 * max_plain,
        "salting should spread the hot key: {max_salted} vs {max_plain}"
    );
}

#[test]
fn salting_costs_assert_replication() {
    // The trade-off the paper alludes to: the adaptation is not free —
    // assert volume grows with the salt count.
    let (_, plain) = run(1, 8);
    let (_, salted) = run(8, 8);
    assert!(salted.communication_bytes() >= plain.communication_bytes());
}

#[test]
fn default_builder_is_unsalted() {
    let db = skewed_db(50);
    let d1 = SimDfs::from_database(&db);
    let d2 = SimDfs::from_database(&db);
    let engine = Engine::new(EngineConfig::unscaled());
    let j1 = build_msj_job(&ctx(), &[0], PayloadMode::Full, JobConfig::default());
    let j2 = build_msj_job_salted(&ctx(), &[0], PayloadMode::Full, JobConfig::default(), 1);
    let s1 = engine.execute_job(&d1, &j1, 0).unwrap();
    let s2 = engine.execute_job(&d2, &j2, 0).unwrap();
    assert_eq!(s1.communication_bytes(), s2.communication_bytes());
    assert_eq!(
        d1.peek(&"Z#X0".into()).unwrap(),
        d2.peek(&"Z#X0".into()).unwrap()
    );
}
