//! Planner accuracy: the sampling estimator's job profiles must track the
//! engine's measured profiles closely enough to drive grouping decisions —
//! the property behind §5.2's "correctly identify the highest cost job"
//! statistic.

use gumbo::core::msj::build_msj_job;
use gumbo::core::{Estimator, PayloadMode, QueryContext};
use gumbo::datagen::queries;
use gumbo::prelude::*;

fn setup(w: &gumbo::datagen::Workload, tuples: usize) -> (QueryContext, SimDfs) {
    let db = w.spec.clone().with_tuples(tuples).database(3);
    let ctx = QueryContext::new(w.query.queries().to_vec()).unwrap();
    (ctx, SimDfs::from_database(&db))
}

/// Estimated MSJ cost within a reasonable band of measured cost for every
/// group size of A1 (estimates use upper bounds, so they may exceed the
/// measured cost, but not wildly).
#[test]
fn estimates_track_measured_costs() {
    let (ctx, dfs) = setup(&queries::a1(), 4000);
    let scale = 25_000; // 100M-equivalent
    let est = Estimator::new(
        &dfs,
        scale,
        CostConstants::default(),
        CostModelKind::Gumbo,
        64,
        3,
    );
    let engine = Engine::new(EngineConfig {
        scale,
        ..EngineConfig::default()
    });

    for group in [vec![0], vec![0, 1], vec![0, 1, 2, 3]] {
        let estimated = est
            .msj_cost(&ctx, &group, PayloadMode::Reference, &JobConfig::default())
            .unwrap();
        let run_dfs = SimDfs::from_database(&dfs.to_database());
        let job = build_msj_job(&ctx, &group, PayloadMode::Reference, JobConfig::default());
        let measured = engine.execute_job(&run_dfs, &job, 0).unwrap().total_cost;
        let ratio = estimated / measured;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "group {group:?}: estimated {estimated:.0} vs measured {measured:.0} (ratio {ratio:.2})"
        );
    }
}

/// The estimator must rank job costs consistently with measurement:
/// bigger groups cost more (same guard), and the grouped job costs less
/// than the sum of its parts.
#[test]
fn estimator_preserves_cost_orderings() {
    let (ctx, dfs) = setup(&queries::b1(), 2000);
    let scale = 50_000;
    let est = Estimator::new(
        &dfs,
        scale,
        CostConstants::default(),
        CostModelKind::Gumbo,
        64,
        3,
    );
    let cfg = JobConfig::default();

    let small = est
        .msj_cost(&ctx, &[0, 1], PayloadMode::Reference, &cfg)
        .unwrap();
    let large = est
        .msj_cost(
            &ctx,
            &(0..8).collect::<Vec<_>>(),
            PayloadMode::Reference,
            &cfg,
        )
        .unwrap();
    assert!(large > small);

    let grouped = est
        .msj_cost(
            &ctx,
            &(0..16).collect::<Vec<_>>(),
            PayloadMode::Reference,
            &cfg,
        )
        .unwrap();
    let singles: f64 = (0..16)
        .map(|i| {
            est.msj_cost(&ctx, &[i], PayloadMode::Reference, &cfg)
                .unwrap()
        })
        .sum();
    assert!(
        grouped < singles,
        "grouping all of B1 should beat singletons: {grouped:.0} vs {singles:.0}"
    );
}

/// Measured pairwise ranking accuracy of the estimator stays high across
/// heterogeneous jobs (the §5.2 comparison, here against our deterministic
/// measured costs).
#[test]
fn pairwise_ranking_accuracy_is_high() {
    let scale = 25_000;
    let engine = Engine::new(EngineConfig {
        scale,
        ..EngineConfig::default()
    });
    let mut observations: Vec<(f64, f64)> = Vec::new(); // (estimated, measured)

    for w in [queries::a1(), queries::a2(), queries::a3()] {
        let (ctx, dfs) = setup(&w, 4000);
        let est = Estimator::new(
            &dfs,
            scale,
            CostConstants::default(),
            CostModelKind::Gumbo,
            64,
            3,
        );
        let n = ctx.semijoins().len();
        for k in 1..=n {
            let group: Vec<usize> = (0..k).collect();
            let estimated = est
                .msj_cost(&ctx, &group, PayloadMode::Reference, &JobConfig::default())
                .unwrap();
            let run_dfs = SimDfs::from_database(&dfs.to_database());
            let job = build_msj_job(&ctx, &group, PayloadMode::Reference, JobConfig::default());
            let measured = engine.execute_job(&run_dfs, &job, 0).unwrap().total_cost;
            observations.push((estimated, measured));
        }
    }

    let mut correct = 0;
    let mut pairs = 0;
    for i in 0..observations.len() {
        for j in (i + 1)..observations.len() {
            let (ei, mi) = observations[i];
            let (ej, mj) = observations[j];
            if (mi - mj).abs() < 1e-9 {
                continue;
            }
            pairs += 1;
            if (ei > ej) == (mi > mj) {
                correct += 1;
            }
        }
    }
    let accuracy = correct as f64 / pairs as f64;
    assert!(
        accuracy >= 0.72,
        "ranking accuracy {accuracy:.2} below the paper's 72% bar ({correct}/{pairs})"
    );
}
