//! Concurrency smoke test: the parallel runtime's output must not depend
//! on its worker count or on OS scheduling.
//!
//! The same program runs with 1, 4 and 16 worker threads (and repeatedly
//! at the highest contention level); any nondeterminism in the shuffle
//! ordering or the reduce merge would show up as diverging relations or
//! statistics.

use gumbo::datagen::queries;
use gumbo::mr::{Job, JobConfig, Mapper, Message, Payload, Reducer};
use gumbo::prelude::*;

fn run_with(threads: usize, workload: &gumbo::datagen::Workload) -> (Vec<String>, ProgramStats) {
    let db = workload.spec.database(11);
    let engine = GumboEngine::with_executor(
        EngineConfig {
            scale: 5_000,
            ..EngineConfig::default()
        },
        ExecutorKind::Parallel { threads },
        EvalOptions::default(),
    );
    let dfs = SimDfs::from_database(&db);
    let stats = engine.evaluate(&dfs, &workload.query).unwrap();
    // Render every stored relation to a canonical string so runs can be
    // compared wholesale.
    let rendered = dfs
        .file_names()
        .iter()
        .map(|name| {
            let rel = dfs.peek(name).unwrap();
            let tuples: Vec<String> = rel.iter().map(|t| format!("{t:?}")).collect();
            format!("{name}:{}", tuples.join(","))
        })
        .collect();
    (rendered, stats)
}

#[test]
fn thread_count_does_not_change_results() {
    // An 8-conditional fan-out keeps many map and reduce tasks in flight.
    let workload = queries::a3_family(8).with_tuples(500);
    let (baseline, base_stats) = run_with(1, &workload);
    for threads in [4usize, 16] {
        let (rendered, stats) = run_with(threads, &workload);
        assert_eq!(baseline, rendered, "outputs diverged at {threads} threads");
        assert_eq!(base_stats.num_jobs(), stats.num_jobs());
        assert!((base_stats.net_time() - stats.net_time()).abs() < 1e-9);
        assert!((base_stats.total_time() - stats.total_time()).abs() < 1e-9);
    }
}

#[test]
fn repeated_high_contention_runs_are_stable() {
    // Rerun the 16-thread configuration several times: scheduling noise
    // across runs must never leak into results.
    let workload = queries::b1().with_tuples(300);
    let (first, _) = run_with(16, &workload);
    for _ in 0..3 {
        let (again, _) = run_with(16, &workload);
        assert_eq!(first, again);
    }
}

/// A mapper that funnels everything onto very few keys — maximum shuffle
/// contention, many values per group.
struct HotKeyMapper;
impl Mapper for HotKeyMapper {
    fn map(&self, fact: &gumbo::common::Fact, i: u64, emit: &mut dyn FnMut(Tuple, Message)) {
        let key = Tuple::from_ints(&[(i % 3) as i64]);
        emit(
            key,
            Message::Req {
                cond: 0,
                payload: Payload::Tuple(fact.tuple.clone()),
            },
        );
    }
}

/// A reducer whose output depends on the *order* of its input values —
/// the adversarial case for shuffle determinism.
struct OrderSensitiveReducer;
impl Reducer for OrderSensitiveReducer {
    fn reduce(
        &self,
        key: &Tuple,
        values: &[Message],
        emit: &mut dyn FnMut(&gumbo::common::RelationName, Tuple),
    ) {
        // Emit the first value only: if value order within a group were
        // nondeterministic, different threads counts would emit different
        // tuples.
        if let Some(Message::Req {
            payload: Payload::Tuple(t),
            ..
        }) = values.first()
        {
            let mut vals: Vec<_> = key.values().to_vec();
            vals.extend(t.values().iter().cloned());
            emit(&"First".into(), Tuple::new(vals));
        }
    }
}

#[test]
fn value_order_within_groups_is_deterministic_across_thread_counts() {
    let job = || Job {
        name: "hotkey".into(),
        inputs: vec!["R".into()],
        outputs: vec![("First".into(), 3)],
        mapper: Box::new(HotKeyMapper),
        reducer: Box::new(OrderSensitiveReducer),
        config: JobConfig::default(),
        estimate: None,
        filter: None,
    };
    let mk_dfs = || {
        let mut db = Database::new();
        for i in 0..2_000i64 {
            db.insert_fact(Fact::new("R", Tuple::from_ints(&[i, i * 7 % 1000])))
                .unwrap();
        }
        SimDfs::from_database(&db)
    };
    let mut first: Option<Relation> = None;
    for threads in [1usize, 4, 16] {
        let dfs = mk_dfs();
        ExecutorKind::Parallel { threads }
            .build(EngineConfig {
                scale: 100_000,
                ..EngineConfig::default()
            })
            .execute_job(&dfs, &job(), 0)
            .unwrap();
        let got = dfs.peek(&"First".into()).unwrap().as_ref().clone();
        match &first {
            None => first = Some(got),
            Some(expected) => {
                assert_eq!(
                    expected, &got,
                    "group value order diverged at {threads} threads"
                )
            }
        }
    }
}
