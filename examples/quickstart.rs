//! Quickstart: evaluate the paper's introductory query end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The query (from §1 of the paper) asks for all pairs `(x, y)` in `R` such
//! that `(x, y)` or `(y, x)` occurs in `S` and some `(x, z)` occurs in `T`:
//!
//! ```text
//! SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z)
//! ```

use gumbo::prelude::*;

fn main() -> Result<()> {
    // ---- build a small database --------------------------------------
    let mut db = Database::new();
    for (rel, tuple) in [
        ("R", vec![1i64, 2]),
        ("R", vec![3, 4]),
        ("R", vec![5, 6]),
        ("S", vec![1, 2]), // matches R(1,2) directly
        ("S", vec![4, 3]), // matches R(3,4) flipped
        ("T", vec![1, 9]), // gives R(1,2) its T-witness
        ("T", vec![3, 7]), // gives R(3,4) its T-witness
    ] {
        db.insert_fact(Fact::new(rel, Tuple::from_ints(&tuple)))?;
    }

    // ---- parse the paper's SQL-like syntax ----------------------------
    let query = parse_program(
        "Answer := SELECT (x, y) FROM R(x, y) \
         WHERE (S(x, y) OR S(y, x)) AND T(x, z);",
    )?;
    println!("query:\n  {query}\n");

    // ---- plan and execute on the simulated cluster --------------------
    let engine = GumboEngine::with_defaults();
    let dfs = SimDfs::from_database(&db);
    let (stats, answer) = engine.eval().run_with_output(&dfs, &query)?;

    println!("answer relation ({} tuples):", answer.len());
    for t in answer.iter() {
        println!("  Answer{t}");
    }

    // ---- the paper's four metrics --------------------------------------
    println!("\nexecution statistics:");
    println!(
        "  net time        : {:>8.1} s (simulated wall clock)",
        stats.net_time()
    );
    println!(
        "  total time      : {:>8.1} s (aggregate task time)",
        stats.total_time()
    );
    println!("  input cost      : {}", stats.input_bytes());
    println!("  communication   : {}", stats.communication_bytes());
    println!(
        "  jobs / rounds   : {} / {}",
        stats.num_jobs(),
        stats.num_rounds()
    );

    // ---- cross-check against the naive reference evaluator ------------
    let expected = NaiveEvaluator::new().evaluate_sgf(&query, &db)?;
    assert_eq!(answer, expected);
    println!("\nverified against the naive evaluator ✓");
    Ok(())
}
