//! Plan explorer: inspect what the planners actually decide.
//!
//! ```text
//! cargo run --example plan_explorer
//! ```
//!
//! For the running example of §4.4 (Example 4 / Figure 2) this walks
//! through: semi-join extraction, the cost of each of Figure 2's three
//! alternative plans under the paper's cost model, the partition chosen by
//! `Greedy-BSGF`, and — for the nested query of Example 5 — the multiway
//! topological sort chosen by `Greedy-SGF` versus the brute-force optimum.

use gumbo::core::planner::{greedy_sgf_sort, optimal_sgf_sort};
use gumbo::core::Estimator;
use gumbo::prelude::*;

fn main() -> Result<()> {
    // ---------- Example 4: BSGF plan alternatives ----------------------
    let query =
        parse_query("Z := SELECT (x, y) FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));")?;
    println!("BSGF query (Example 4):\n  {query}\n");

    let ctx = QueryContext::new(vec![query])?;
    println!("extracted semi-joins:");
    for sj in ctx.semijoins() {
        println!("  {sj}");
    }

    // Generate data so the cost model has sizes to work with.
    let spec = DataSpec::new(&[("R", 2)], &[("S", 2), ("T", 1), ("U", 1)]).with_tuples(5_000);
    let db = spec.database(7);
    let dfs = SimDfs::from_database(&db);
    let scale = 20_000; // 100M-equivalent tuples
    let est = Estimator::new(
        &dfs,
        scale,
        CostConstants::default(),
        CostModelKind::Gumbo,
        64,
        7,
    );

    println!("\ncosts of Figure 2's alternative plans (cost units):");
    let cfg = JobConfig::default();
    for (label, groups) in [
        (
            "(a) MSJ(X1) | MSJ(X2) | MSJ(X3)",
            vec![vec![0], vec![1], vec![2]],
        ),
        ("(b) MSJ(X1,X3) | MSJ(X2)", vec![vec![0, 2], vec![1]]),
        ("(c) MSJ(X1,X2,X3)", vec![vec![0, 1, 2]]),
    ] {
        let plan = BsgfSetPlan::two_round(groups, PayloadMode::Reference, cfg);
        println!("  {label:<35} -> {:>10.1}", est.plan_cost(&ctx, &plan)?);
    }

    let engine = GumboEngine::new(
        EngineConfig {
            scale,
            ..EngineConfig::default()
        },
        EvalOptions {
            enable_one_round: false,
            ..EvalOptions::default()
        },
    );
    let plan = engine.plan_group(&est, &ctx)?;
    println!("\nGreedy-BSGF chooses: {plan}");
    println!("estimated cost     : {:.1}\n", est.plan_cost(&ctx, &plan)?);

    // ---------- Example 5: SGF multiway topological sorts ---------------
    let nested = parse_program(
        "Z1 := SELECT (x, y) FROM R1(x, y) WHERE S(x);\n\
         Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(x);\n\
         Z3 := SELECT (x, y) FROM Z2(x, y) WHERE U(x);\n\
         Z4 := SELECT (x, y) FROM R2(x, y) WHERE T(x);\n\
         Z5 := SELECT (x, y) FROM Z3(x, y) WHERE Z4(x, x);",
    )?;
    println!("nested SGF query (Example 5):\n{nested}\n");

    let graph = DependencyGraph::new(&nested);
    println!(
        "all multiway topological sorts: {}",
        graph.all_multiway_sorts().len()
    );

    let greedy = greedy_sgf_sort(&nested);
    println!("Greedy-SGF sort: {greedy:?}   (Q4 grouped with the T-sharing Q2)");

    let spec =
        DataSpec::new(&[("R1", 2), ("R2", 2)], &[("S", 1), ("T", 1), ("U", 1)]).with_tuples(5_000);
    let dfs = SimDfs::from_database(&spec.database(7));
    let engine = GumboEngine::new(
        EngineConfig {
            scale,
            ..EngineConfig::default()
        },
        EvalOptions::default(),
    );
    let greedy_cost = engine.sort_cost(&dfs, &nested, &greedy)?;
    let (optimal, optimal_cost) =
        optimal_sgf_sort(&nested, &mut |s| engine.sort_cost(&dfs, &nested, s))?;
    println!("optimal sort   : {optimal:?}");
    println!(
        "estimated cost : greedy {greedy_cost:.1} vs optimal {optimal_cost:.1} (ratio {:.3})",
        greedy_cost / optimal_cost
    );
    Ok(())
}
