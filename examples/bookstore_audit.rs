//! The book-retailer scenario of Example 2: nested SGF with negation.
//!
//! ```text
//! cargo run --example bookstore_audit
//! ```
//!
//! `Amaz`, `BN` and `BD` hold `(title, author, rating)` rows from three
//! retailers; `Upcoming` holds `(newtitle, author)` announcements. The
//! query selects upcoming books by authors who have *not* received a "bad"
//! rating for the same title at all three retailers — a two-level SGF
//! query whose inner subquery `Z1` must be evaluated first (it shares the
//! `ttl` variable across atoms, so it cannot be folded into one BSGF).

use gumbo::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new();

    // (title, author, rating); rating 0 = "bad".
    let catalog: &[(&str, i64, i64, i64)] = &[
        // author 1's title 10 is rated bad everywhere -> blacklisted
        ("Amaz", 10, 1, 0),
        ("BN", 10, 1, 0),
        ("BD", 10, 1, 0),
        // author 2's title 11 is bad at two retailers only -> fine
        ("Amaz", 11, 2, 0),
        ("BN", 11, 2, 0),
        ("BD", 11, 2, 5),
        // author 3 has great ratings -> fine
        ("Amaz", 12, 3, 9),
        ("BN", 12, 3, 8),
        ("BD", 12, 3, 9),
    ];
    for &(rel, ttl, aut, rating) in catalog {
        db.insert_fact(Fact::new(rel, Tuple::from_ints(&[ttl, aut, rating])))?;
    }
    for &(new, aut) in &[(100i64, 1i64), (101, 2), (102, 3)] {
        db.insert_fact(Fact::new("Upcoming", Tuple::from_ints(&[new, aut])))?;
    }

    // Example 2, with "bad" encoded as rating constant 0.
    let query = parse_program(
        "Z1 := SELECT aut FROM Amaz(ttl, aut, 0) \
               WHERE BN(ttl, aut, 0) AND BD(ttl, aut, 0);\n\
         Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);",
    )?;
    println!("query:\n{query}\n");

    // The dependency graph has two levels: Z1 then Z2.
    let graph = DependencyGraph::new(&query);
    println!("dependency levels: {:?}\n", graph.level_sort());

    let engine = GumboEngine::with_defaults();
    let dfs = SimDfs::from_database(&db);
    let (stats, releases) = engine.eval().run_with_output(&dfs, &query)?;

    println!("safe upcoming releases (newtitle, author):");
    for t in releases.iter() {
        println!("  {t}");
    }
    assert_eq!(releases.len(), 2); // authors 2 and 3

    // The blacklist itself is available as the intermediate Z1.
    let blacklist = dfs.peek(&"Z1".into())?;
    println!(
        "\nblacklisted authors: {:?}",
        blacklist.iter().collect::<Vec<_>>()
    );
    assert_eq!(blacklist.len(), 1);

    println!(
        "\nplan: {} jobs in {} rounds, net {:.1}s, total {:.1}s",
        stats.num_jobs(),
        stats.num_rounds(),
        stats.net_time(),
        stats.total_time()
    );

    let expected = NaiveEvaluator::new().evaluate_sgf(&query, &db)?;
    assert_eq!(releases, expected);
    println!("verified against the naive evaluator ✓");
    Ok(())
}
