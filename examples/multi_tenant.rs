//! Multi-tenant evaluation (§4.7): several independent SGF queries
//! evaluated together over the union of their BSGF subqueries, so the
//! planner can exploit overlap *between* queries.
//!
//! ```text
//! cargo run --example multi_tenant
//! ```
//!
//! Scenario: two analysts submit separate audit queries over a shared
//! event log. Both filter on the same `Flagged` relation; evaluated
//! together, `Greedy-SGF` groups their first levels into one batch and
//! `Greedy-BSGF` shares the `Flagged` scan and assert stream.

use gumbo::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new();
    // Events(user, action); Flagged(user); Vip(user); Sessions(user, day).
    for (rel, t) in [
        ("Events", vec![1i64, 100]),
        ("Events", vec![2, 101]),
        ("Events", vec![3, 102]),
        ("Sessions", vec![1, 7]),
        ("Sessions", vec![3, 8]),
        ("Sessions", vec![4, 9]),
    ] {
        db.insert_fact(Fact::new(rel, Tuple::from_ints(&t)))?;
    }
    for u in [1i64, 4] {
        db.insert_fact(Fact::new("Flagged", Tuple::from_ints(&[u])))?;
    }
    db.insert_fact(Fact::new("Vip", Tuple::from_ints(&[3])))?;

    // Analyst 1: flagged users' events, then only those who are not VIPs.
    let audit = parse_program(
        "FlaggedEvents := SELECT (u, a) FROM Events(u, a) WHERE Flagged(u);\n\
         AuditList := SELECT (u, a) FROM FlaggedEvents(u, a) WHERE NOT Vip(u);",
    )?;
    // Analyst 2: session days of flagged users.
    let sessions =
        parse_program("FlaggedSessions := SELECT (u, d) FROM Sessions(u, d) WHERE Flagged(u);")?;

    let engine = GumboEngine::with_defaults();
    let dfs = SimDfs::from_database(&db);

    // §4.7: one combined evaluation over the union of subqueries.
    let stats = engine
        .eval()
        .run_many(&dfs, &[audit.clone(), sessions.clone()])?;

    println!(
        "combined plan: {} jobs in {} rounds",
        stats.num_jobs(),
        stats.num_rounds()
    );
    println!("audit list   : {:?}", dfs.peek(&"AuditList".into())?.len());
    println!(
        "sessions     : {:?}",
        dfs.peek(&"FlaggedSessions".into())?.len()
    );

    // Compare against evaluating the two queries back to back.
    let dfs2 = SimDfs::from_database(&db);
    let mut separate = engine.evaluate(&dfs2, &audit)?;
    separate.extend(engine.evaluate(&dfs2, &sessions)?);
    println!(
        "\nrounds: combined {} vs separate {}  |  net: {:.1}s vs {:.1}s",
        stats.num_rounds(),
        separate.num_rounds(),
        stats.net_time(),
        separate.net_time()
    );
    assert!(stats.num_rounds() <= separate.num_rounds());

    // Both produce identical results.
    for out in ["AuditList", "FlaggedSessions"] {
        assert_eq!(dfs.peek(&out.into())?, dfs2.peek(&out.into())?);
    }
    // And both match the reference evaluator.
    let naive = NaiveEvaluator::new();
    let combined = SgfQuery::union(&[audit, sessions])?;
    let env = naive.evaluate_sgf_all(&combined, &db)?;
    for out in ["AuditList", "FlaggedSessions"] {
        assert_eq!(
            dfs.peek(&out.into())?.as_ref(),
            env.relation(&out.into()).unwrap()
        );
    }
    println!("verified against the naive evaluator ✓");
    Ok(())
}
