//! Strategy face-off on a paper workload: SEQ vs PAR vs GREEDY vs 1-ROUND.
//!
//! ```text
//! cargo run --release --example strategy_faceoff
//! ```
//!
//! Runs query A3 of Table 2 (`R(x,y,z,w) ⋉ S(x) ∧ T(x) ∧ U(x) ∧ V(x)`,
//! all conditionals sharing the join key `x`) on generated data and prints
//! the paper's four metrics for each strategy — the miniature version of
//! Figure 3's A3 column. Expect: parallel strategies win on *net* time,
//! SEQ wins on *total* time among unfused plans, and 1-ROUND wins both.

use gumbo::baselines::{greedy_engine, one_round_engine, par_engine, SeqStrategy};
use gumbo::datagen::queries;
use gumbo::prelude::*;

fn main() -> Result<()> {
    // A3 at 10k real tuples, scale 10_000 = the paper's 100M-tuple regime.
    let workload = queries::a3().with_tuples(10_000);
    let db = workload.spec.database(42);
    let config = EngineConfig {
        scale: 10_000,
        ..EngineConfig::default()
    };

    println!(
        "workload {} ({}M-equivalent guard tuples, selectivity {})\n",
        workload.name,
        (workload.spec.guard_tuples as u64 * config.scale) / 1_000_000,
        workload.spec.selectivity
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>7}",
        "strategy", "net (s)", "total (s)", "input", "shuffle", "jobs"
    );

    let expected = NaiveEvaluator::new().evaluate_sgf(&workload.query, &db)?;
    let report = |name: &str, stats: ProgramStats, dfs: &SimDfs| -> Result<()> {
        let out = dfs.peek(workload.query.output())?;
        assert_eq!(out.as_ref(), &expected, "{name} produced a wrong result");
        println!(
            "{:<10} {:>10.0} {:>12.0} {:>12} {:>12} {:>7}",
            name,
            stats.net_time(),
            stats.total_time(),
            stats.input_bytes().to_string(),
            stats.communication_bytes().to_string(),
            stats.num_jobs()
        );
        Ok(())
    };

    // SEQ: a chain of four semi-join jobs, pruning as it goes.
    let dfs = SimDfs::from_database(&db);
    let stats =
        SeqStrategy::default().evaluate(&Engine::new(config), &dfs, workload.query.queries())?;
    report("SEQ", stats, &dfs)?;

    // PAR: four ungrouped MSJ jobs + EVAL.
    let dfs = SimDfs::from_database(&db);
    let stats = par_engine(config).evaluate(&dfs, &workload.query)?;
    report("PAR", stats, &dfs)?;

    // GREEDY: Greedy-BSGF groups the semi-joins (shared guard scan).
    let dfs = SimDfs::from_database(&db);
    let stats = greedy_engine(config).evaluate(&dfs, &workload.query)?;
    report("GREEDY", stats, &dfs)?;

    // 1-ROUND: the fused MSJ+EVAL job (all conditionals share key x).
    let dfs = SimDfs::from_database(&db);
    let stats = one_round_engine(config).evaluate(&dfs, &workload.query)?;
    report("1-ROUND", stats, &dfs)?;

    println!("\nall strategies verified against the naive evaluator ✓");
    Ok(())
}
